//! The training loop: epochs of shuffled batches, dev-accuracy early
//! stopping with best-weight restoration (paper App. B), and final test
//! evaluation.

use dar_data::{AspectDataset, BatchIter};

use crate::config::TrainConfig;
use crate::eval::{evaluate_model, RationaleMetrics};
use crate::models::RationaleModel;
use crate::Rng;

/// Per-epoch record.
#[derive(Debug, Clone, Copy)]
pub struct EpochLog {
    pub epoch: usize,
    pub train_loss: f32,
    /// Dev accuracy with rationale input (or dev F1 for label-conditioned
    /// selectors that report no accuracy).
    pub dev_score: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub model_name: String,
    pub epochs_run: usize,
    pub best_epoch: usize,
    pub history: Vec<EpochLog>,
    /// Metrics on the annotated test split with best-dev weights restored.
    pub test: RationaleMetrics,
    /// Dev metrics at the best epoch.
    pub dev: RationaleMetrics,
}

/// Trains any [`RationaleModel`] on an [`AspectDataset`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    pub cfg: TrainConfig,
}

impl Trainer {
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Model-selection score on dev: accuracy when available (the paper's
    /// early-stopping criterion), else rationale F1.
    fn dev_score(m: &RationaleMetrics) -> f32 {
        m.acc.unwrap_or(m.f1)
    }

    /// Run the full loop and return the report. The model is left holding
    /// its best-dev weights.
    pub fn fit(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
    ) -> TrainReport {
        let cfg = self.cfg;
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut best_score = f32::NEG_INFINITY;
        let mut best_epoch = 0;
        let mut best_snap = model.snapshot();
        let mut since_best = 0usize;

        for epoch in 0..cfg.epochs {
            let mut loss_sum = 0.0;
            let mut n = 0usize;
            for batch in BatchIter::shuffled(&data.train, cfg.batch_size, rng) {
                loss_sum += model.train_step(&batch, rng);
                n += 1;
            }
            let train_loss = loss_sum / n.max(1) as f32;
            let dev_metrics = evaluate_model(model, &data.dev, cfg.batch_size);
            let score = Self::dev_score(&dev_metrics);
            history.push(EpochLog { epoch, train_loss, dev_score: score });
            if cfg.verbose {
                println!(
                    "[{}] epoch {epoch:>3}  loss {train_loss:.4}  dev {score:.4}",
                    model.name()
                );
            }
            if score > best_score {
                best_score = score;
                best_epoch = epoch;
                best_snap = model.snapshot();
                since_best = 0;
            } else {
                since_best += 1;
                if let Some(patience) = cfg.patience {
                    if since_best >= patience {
                        break;
                    }
                }
            }
        }

        model.restore(&best_snap);
        let dev = evaluate_model(model, &data.dev, cfg.batch_size);
        let test = evaluate_model(model, &data.test, cfg.batch_size);
        TrainReport {
            model_name: model.name().to_owned(),
            epochs_run: history.len(),
            best_epoch,
            history,
            test,
            dev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use crate::models::Rnp;

    #[test]
    fn fit_produces_history_and_restores_best() {
        let data = tiny_dataset(130);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 131);
        let mut rng = dar_tensor::rng(132);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 32,
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data, &mut rng);
        assert_eq!(report.history.len(), 4);
        assert!(report.best_epoch < 4);
        assert!(report.test.sparsity >= 0.0 && report.test.sparsity <= 1.0);
        assert!(report.test.f1 >= 0.0 && report.test.f1 <= 1.0);
    }

    #[test]
    fn early_stopping_halts() {
        let data = tiny_dataset(133);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 134);
        let mut rng = dar_tensor::rng(135);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 32,
            patience: Some(1),
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data, &mut rng);
        assert!(
            report.epochs_run < 50,
            "patience 1 should stop early, ran {}",
            report.epochs_run
        );
    }
}
