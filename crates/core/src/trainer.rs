//! The training loop: epochs of shuffled batches, dev-accuracy early
//! stopping with best-weight restoration (paper App. B), and final test
//! evaluation.
//!
//! # Fault tolerance
//!
//! [`Trainer::fit_checkpointed`] writes a durable checkpoint after every
//! epoch — model parameters, per-optimizer Adam moments, the RNG stream
//! position, and the early-stopping bookkeeping — via the atomic,
//! CRC-protected [`dar_tensor::serial`] format. [`Trainer::fit_resume`]
//! restores all of it, so a run killed between epochs and resumed produces
//! the *same* final [`TrainReport`] as one that never crashed: the only RNG
//! consumers are the per-epoch batch shuffle and the train steps, both of
//! which replay from the restored stream position.

use std::path::Path;

use dar_data::{AspectDataset, BatchIter};
use dar_tensor::optim::AdamState;
use dar_tensor::serial::{self, codec, Checkpoint};
use dar_tensor::{DarError, DarResult};

use crate::config::TrainConfig;
use crate::eval::{evaluate_model, RationaleMetrics};
use crate::models::RationaleModel;
use crate::Rng;

/// Per-epoch record.
#[derive(Debug, Clone, Copy)]
pub struct EpochLog {
    pub epoch: usize,
    pub train_loss: f32,
    /// Dev accuracy with rationale input (or dev F1 for label-conditioned
    /// selectors that report no accuracy).
    pub dev_score: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub model_name: String,
    pub epochs_run: usize,
    pub best_epoch: usize,
    pub history: Vec<EpochLog>,
    /// Metrics on the annotated test split with best-dev weights restored.
    pub test: RationaleMetrics,
    /// Dev metrics at the best epoch.
    pub dev: RationaleMetrics,
}

/// Trains any [`RationaleModel`] on an [`AspectDataset`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    pub cfg: TrainConfig,
}

impl Trainer {
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Model-selection score on dev: accuracy when available (the paper's
    /// early-stopping criterion), else rationale F1.
    fn dev_score(m: &RationaleMetrics) -> f32 {
        m.acc.unwrap_or(m.f1)
    }

    /// Run the full loop and return the report. The model is left holding
    /// its best-dev weights.
    pub fn fit(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
    ) -> TrainReport {
        self.run(model, data, rng, None, None)
            .expect("training without a checkpoint path performs no I/O")
    }

    /// [`Self::fit`], writing a durable checkpoint to `ckpt` after every
    /// epoch. A run killed at any point can be continued with
    /// [`Self::fit_resume`] on the same path.
    pub fn fit_checkpointed(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
        ckpt: &Path,
    ) -> DarResult<TrainReport> {
        self.run(model, data, rng, Some(ckpt), None)
    }

    /// Resume an interrupted [`Self::fit_checkpointed`] run from its
    /// checkpoint. `model` must be constructed identically to the original
    /// (same config/shapes); its weights, optimizer moments, RNG stream,
    /// and early-stopping state are all overwritten from the file, after
    /// which the final report is identical to an uninterrupted run.
    pub fn fit_resume(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
        ckpt: &Path,
    ) -> DarResult<TrainReport> {
        let loaded = serial::load_checkpoint_path(ckpt)?;
        let state = ResumeState::decode(&loaded.meta)?;
        if state.model_name != model.name() {
            return Err(DarError::InvalidData(format!(
                "checkpoint was written by model '{}', resuming '{}'",
                state.model_name,
                model.name()
            )));
        }
        serial::restore_into(&loaded.tensors, &model.params())?;
        model.restore_optim(&state.optim)?;
        *rng = Rng::from_state(state.rng_state);
        dar_obs::event(dar_obs::ObsEvent::CheckpointResumed {
            next_epoch: state.next_epoch as u64,
        });
        dar_obs::inc("train.resumes");
        self.run(model, data, rng, Some(ckpt), Some(state))
    }

    fn run(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
        ckpt: Option<&Path>,
        resume: Option<ResumeState>,
    ) -> DarResult<TrainReport> {
        let _train_span = dar_obs::span("train");
        let cfg = self.cfg;
        let (mut history, mut best_score, mut best_epoch, mut best_snap, mut since_best, start) =
            match resume {
                Some(s) => (
                    s.history,
                    s.best_score,
                    s.best_epoch,
                    s.best_snap,
                    s.since_best,
                    s.next_epoch,
                ),
                None => (
                    Vec::with_capacity(cfg.epochs),
                    f32::NEG_INFINITY,
                    0,
                    model.snapshot(),
                    0usize,
                    0,
                ),
            };

        for epoch in start..cfg.epochs {
            // Patience is re-checked at the top so a resume from a
            // checkpoint written just before early stopping also stops.
            if let Some(patience) = cfg.patience {
                if since_best >= patience {
                    break;
                }
            }
            let mut loss_sum = 0.0;
            let mut n = 0usize;
            {
                let _epoch_span = dar_obs::span("epoch");
                for batch in BatchIter::shuffled(&data.train, cfg.batch_size, rng) {
                    loss_sum += model.train_step_sharded(&batch, rng, cfg.grad_accum_shards);
                    n += 1;
                }
            }
            dar_obs::add("train.steps", n as u64);
            dar_obs::inc("train.epochs");
            let train_loss = loss_sum / n.max(1) as f32;
            let dev_metrics = {
                let _eval_span = dar_obs::span("eval");
                evaluate_model(model, &data.dev, cfg.batch_size)
            };
            let score = Self::dev_score(&dev_metrics);
            dar_obs::event(dar_obs::ObsEvent::EpochDone {
                epoch: epoch as u64,
                train_loss,
                dev_score: score,
            });
            history.push(EpochLog {
                epoch,
                train_loss,
                dev_score: score,
            });
            if cfg.verbose {
                println!(
                    "[{}] epoch {epoch:>3}  loss {train_loss:.4}  dev {score:.4}",
                    model.name()
                );
            }
            if score > best_score {
                best_score = score;
                best_epoch = epoch;
                best_snap = model.snapshot();
                since_best = 0;
            } else {
                since_best += 1;
            }
            if let Some(path) = ckpt {
                let state = ResumeState {
                    model_name: model.name().to_owned(),
                    rng_state: rng.state(),
                    next_epoch: epoch + 1,
                    best_epoch,
                    best_score,
                    since_best,
                    history: history.clone(),
                    best_snap: best_snap.clone(),
                    optim: model.optim_states(),
                };
                let ckpt = Checkpoint::new(model.params(), state.encode());
                {
                    let _ckpt_span = dar_obs::span("checkpoint");
                    serial::save_checkpoint_path(path, &ckpt)?;
                }
                dar_obs::event(dar_obs::ObsEvent::CheckpointSaved {
                    next_epoch: (epoch + 1) as u64,
                });
                dar_obs::inc("train.checkpoints_saved");
            }
        }

        model.restore(&best_snap);
        let (dev, test) = {
            let _eval_span = dar_obs::span("eval");
            (
                evaluate_model(model, &data.dev, cfg.batch_size),
                evaluate_model(model, &data.test, cfg.batch_size),
            )
        };
        dar_obs::gauge_set("train.best_epoch", best_epoch as i64);
        Ok(TrainReport {
            model_name: model.name().to_owned(),
            epochs_run: history.len(),
            best_epoch,
            history,
            test,
            dev,
        })
    }
}

/// Everything beyond the raw parameter tensors that an epoch-boundary
/// checkpoint must carry for exact resume. Serialized into the opaque
/// `meta` blob of a [`Checkpoint`].
#[derive(Debug, Clone)]
pub(crate) struct ResumeState {
    pub(crate) model_name: String,
    pub(crate) rng_state: [u64; 4],
    pub(crate) next_epoch: usize,
    pub(crate) best_epoch: usize,
    pub(crate) best_score: f32,
    pub(crate) since_best: usize,
    pub(crate) history: Vec<EpochLog>,
    pub(crate) best_snap: Vec<Vec<f32>>,
    pub(crate) optim: Vec<AdamState>,
}

/// Bumped whenever the resume metadata layout changes.
const RESUME_META_VERSION: u32 = 1;

impl ResumeState {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u32(&mut out, RESUME_META_VERSION);
        codec::put_str(&mut out, &self.model_name);
        for w in self.rng_state {
            codec::put_u64(&mut out, w);
        }
        codec::put_u32(&mut out, self.next_epoch as u32);
        codec::put_u32(&mut out, self.best_epoch as u32);
        codec::put_f32(&mut out, self.best_score);
        codec::put_u32(&mut out, self.since_best as u32);
        codec::put_u32(&mut out, self.history.len() as u32);
        for log in &self.history {
            codec::put_u32(&mut out, log.epoch as u32);
            codec::put_f32(&mut out, log.train_loss);
            codec::put_f32(&mut out, log.dev_score);
        }
        codec::put_u32(&mut out, self.best_snap.len() as u32);
        for snap in &self.best_snap {
            codec::put_f32s(&mut out, snap);
        }
        codec::put_u32(&mut out, self.optim.len() as u32);
        for state in &self.optim {
            state.encode(&mut out);
        }
        out
    }

    pub(crate) fn decode(meta: &[u8]) -> DarResult<Self> {
        let mut c = codec::Cursor::new(meta);
        let version = c.u32()?;
        if version != RESUME_META_VERSION {
            return Err(DarError::InvalidData(format!(
                "unsupported resume metadata version {version}"
            )));
        }
        let model_name = c.str_()?;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = c.u64()?;
        }
        if rng_state == [0; 4] {
            return Err(DarError::InvalidData(
                "resume RNG state is all-zero".to_owned(),
            ));
        }
        let next_epoch = c.u32()? as usize;
        let best_epoch = c.u32()? as usize;
        let best_score = c.f32()?;
        let since_best = c.u32()? as usize;
        let n_hist = c.u32()? as usize;
        if n_hist > 1 << 20 {
            return Err(DarError::InvalidData(format!(
                "resume history of {n_hist} epochs"
            )));
        }
        let mut history = Vec::with_capacity(n_hist);
        for _ in 0..n_hist {
            let epoch = c.u32()? as usize;
            let train_loss = c.f32()?;
            let dev_score = c.f32()?;
            history.push(EpochLog {
                epoch,
                train_loss,
                dev_score,
            });
        }
        let n_snap = c.u32()? as usize;
        if n_snap > serial::MAX_TENSORS {
            return Err(DarError::InvalidData(format!(
                "resume snapshot of {n_snap} tensors"
            )));
        }
        let mut best_snap = Vec::with_capacity(n_snap);
        for _ in 0..n_snap {
            best_snap.push(c.f32s()?);
        }
        let n_opt = c.u32()? as usize;
        if n_opt > 64 {
            return Err(DarError::InvalidData(format!(
                "resume claims {n_opt} optimizers"
            )));
        }
        let mut optim = Vec::with_capacity(n_opt);
        for _ in 0..n_opt {
            optim.push(AdamState::decode(&mut c)?);
        }
        Ok(ResumeState {
            model_name,
            rng_state,
            next_epoch,
            best_epoch,
            best_score,
            since_best,
            history,
            best_snap,
            optim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use crate::models::Rnp;

    #[test]
    fn fit_produces_history_and_restores_best() {
        let data = tiny_dataset(130);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 131);
        let mut rng = dar_tensor::rng(132);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 32,
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data, &mut rng);
        assert_eq!(report.history.len(), 4);
        assert!(report.best_epoch < 4);
        assert!(report.test.sparsity >= 0.0 && report.test.sparsity <= 1.0);
        assert!(report.test.f1 >= 0.0 && report.test.f1 <= 1.0);
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_trainer_{name}_{}", std::process::id()));
        p
    }

    /// The paper-critical resume guarantee: a run killed between epochs
    /// and resumed from its checkpoint must reach the exact metrics of a
    /// run that never crashed.
    #[test]
    fn resume_after_crash_matches_uninterrupted_run() {
        let data = tiny_dataset(140);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 141);
        let full = TrainConfig {
            epochs: 4,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };

        // Uninterrupted reference run.
        let path_a = tmpfile("uninterrupted");
        let mut rng = dar_tensor::rng(142);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let reference = Trainer::new(full)
            .fit_checkpointed(&mut model, &data, &mut rng, &path_a)
            .unwrap();

        // "Crashed" run: same seeds, killed after epoch 2 (simulated by a
        // truncated epoch budget — the checkpoint it leaves is identical
        // to the one a real mid-run kill would leave behind).
        let path_b = tmpfile("crashed");
        let mut rng = dar_tensor::rng(142);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let partial = TrainConfig { epochs: 2, ..full };
        Trainer::new(partial)
            .fit_checkpointed(&mut model, &data, &mut rng, &path_b)
            .unwrap();

        // Resume in a fresh "process": identically constructed model, rng
        // whose state will be overwritten from the checkpoint.
        let mut rng = dar_tensor::rng(142);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let mut rng = dar_tensor::rng(999); // wrong on purpose; must be ignored
        let resumed = Trainer::new(full)
            .fit_resume(&mut model, &data, &mut rng, &path_b)
            .unwrap();

        assert_eq!(resumed.epochs_run, reference.epochs_run);
        assert_eq!(resumed.best_epoch, reference.best_epoch);
        assert_eq!(resumed.test.f1, reference.test.f1);
        assert_eq!(resumed.test.acc, reference.test.acc);
        assert_eq!(resumed.dev.f1, reference.dev.f1);
        for (r, f) in resumed.history.iter().zip(&reference.history) {
            assert_eq!(r.train_loss, f.train_loss, "epoch {} diverged", r.epoch);
            assert_eq!(r.dev_score, f.dev_score, "epoch {} diverged", r.epoch);
        }
        std::fs::remove_file(path_a).ok();
        std::fs::remove_file(path_b).ok();
    }

    #[test]
    fn resume_rejects_wrong_model() {
        let data = tiny_dataset(150);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 151);
        let path = tmpfile("wrong_model");
        let short = TrainConfig {
            epochs: 1,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };
        let mut rng = dar_tensor::rng(152);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        Trainer::new(short)
            .fit_checkpointed(&mut model, &data, &mut rng, &path)
            .unwrap();

        let mut other = crate::models::Vib::new(&cfg, &emb, max_len(&data), &mut rng);
        let err = Trainer::new(short)
            .fit_resume(&mut other, &data, &mut rng, &path)
            .unwrap_err();
        assert!(
            matches!(err, dar_tensor::DarError::InvalidData(_)),
            "got {err:?}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn early_stopping_halts() {
        let data = tiny_dataset(133);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 134);
        let mut rng = dar_tensor::rng(135);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 32,
            patience: Some(1),
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data, &mut rng);
        assert!(
            report.epochs_run < 50,
            "patience 1 should stop early, ran {}",
            report.epochs_run
        );
    }
}
