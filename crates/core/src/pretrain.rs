//! Pretraining routines:
//!
//! * [`full_text_predictor`] — Eq. (4), the frozen `predictor^t` of DAR;
//! * [`skewed_predictor`] — first-sentence-only pretraining that induces
//!   the interlocking shift of Table VII;
//! * [`skewed_generator`] — the first-token label-leak pretraining of
//!   Table VIII.

use dar_data::{AspectDataset, Batch, BatchIter, Review};
use dar_nn::loss::{accuracy, cross_entropy};
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, Optimizer};
use dar_tensor::Rng;

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::predictor::Predictor;

/// Longest review across all splits — encoders are sized to it.
pub fn max_len(data: &AspectDataset) -> usize {
    data.train
        .iter()
        .chain(&data.dev)
        .chain(&data.test)
        .map(Review::len)
        .max()
        .unwrap_or(1)
}

fn train_full_text(
    pred: &Predictor,
    reviews: &[Review],
    epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut Rng,
) {
    let mut opt = Adam::with_lr(lr);
    let params = pred.params();
    for _ in 0..epochs {
        for batch in BatchIter::shuffled(reviews, batch_size, rng) {
            zero_grads(&params);
            let logits = pred.forward_full(&batch);
            cross_entropy(&logits, &batch.labels).backward();
            clip_grad_norm(&params, 5.0);
            opt.step(&params);
        }
    }
}

/// Eq. (4): pretrain a predictor on the full input. Returned frozen-by-
/// convention (DAR never steps it).
pub fn full_text_predictor(
    cfg: &RationaleConfig,
    embedding: &SharedEmbedding,
    data: &AspectDataset,
    epochs: usize,
    rng: &mut Rng,
) -> Predictor {
    let pred = Predictor::new(cfg, embedding, max_len(data), rng);
    train_full_text(&pred, &data.train, epochs, 32, cfg.lr, rng);
    pred
}

/// Accuracy of a predictor's full-text path over a split.
pub fn full_text_accuracy(pred: &Predictor, reviews: &[Review], batch_size: usize) -> f32 {
    let mut correct = 0.0;
    let mut n = 0.0;
    for batch in BatchIter::sequential(reviews, batch_size) {
        let logits = dar_tensor::no_grad(|| pred.forward_full(&batch));
        correct += accuracy(&logits, &batch.labels) * batch.len() as f32;
        n += batch.len() as f32;
    }
    if n > 0.0 {
        correct / n
    } else {
        0.0
    }
}

/// Table VII's skewed predictor: pretrained for `k` epochs on the **first
/// sentence only** (usually the Appearance sentence in SynBeer), with the
/// paper's batch size 500 and learning rate 1e-3.
pub fn skewed_predictor(
    cfg: &RationaleConfig,
    embedding: &SharedEmbedding,
    data: &AspectDataset,
    k_epochs: usize,
    rng: &mut Rng,
) -> Predictor {
    let first_sentences: Vec<Review> = data.train.iter().map(Review::first_sentence).collect();
    let pred = Predictor::new(cfg, embedding, max_len(data), rng);
    let batch = 500.min(first_sentences.len().max(1));
    train_full_text(&pred, &first_sentences, k_epochs, batch, 1e-3, rng);
    pred
}

/// Table VIII's skewed generator: pretrained so that the **first token's**
/// selection equals the class label (class 1 → select, class 0 → don't),
/// leaking the label positionally. Training stops once the
/// generator-as-classifier accuracy exceeds `threshold`; returns the
/// generator and the achieved `Pre_acc`.
pub fn skewed_generator(
    cfg: &RationaleConfig,
    embedding: &SharedEmbedding,
    data: &AspectDataset,
    threshold: f32,
    rng: &mut Rng,
) -> (Generator, f32) {
    let ml = max_len(data);
    let gen = Generator::new(cfg, embedding, ml, rng);
    let mut opt = Adam::with_lr(cfg.lr);
    let params = gen.params();
    let mut pre_acc = first_token_accuracy(&gen, &data.train, 64);
    let max_epochs = 50;
    for _ in 0..max_epochs {
        if pre_acc >= threshold {
            break;
        }
        for batch in BatchIter::shuffled(&data.train, 64, rng) {
            zero_grads(&params);
            let logits = first_token_logits(&gen, &batch);
            cross_entropy(&logits, &batch.labels).backward();
            clip_grad_norm(&params, 5.0);
            opt.step(&params);
        }
        pre_acc = first_token_accuracy(&gen, &data.train, 64);
    }
    (gen, pre_acc)
}

/// Selection logits of each review's first token, `[b, 2]`.
fn first_token_logits(gen: &Generator, batch: &Batch) -> dar_tensor::Tensor {
    let l = batch.seq_len();
    let all = gen.selection_logits(batch); // [b*l, 2]
    let rows: Vec<usize> = (0..batch.len()).map(|i| i * l).collect();
    all.gather_rows(&rows)
}

/// Accuracy of the generator read as a first-token classifier.
pub fn first_token_accuracy(gen: &Generator, reviews: &[Review], batch_size: usize) -> f32 {
    let mut correct = 0.0;
    let mut n = 0.0;
    for batch in BatchIter::sequential(reviews, batch_size) {
        let logits = dar_tensor::no_grad(|| first_token_logits(gen, &batch));
        correct += accuracy(&logits, &batch.labels) * batch.len() as f32;
        n += batch.len() as f32;
    }
    if n > 0.0 {
        correct / n
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{tiny_config, tiny_dataset, tiny_embedding};

    #[test]
    fn full_text_pretraining_learns() {
        // The 192-review tiny fixture overfits before it generalizes (train
        // accuracy saturates while dev plateaus), so this test draws a
        // larger corpus: the claim under test is that Eq. (4) pretraining
        // generalizes, not that it memorizes.
        use dar_data::synth::{Aspect, SynthConfig};
        use dar_data::SynBeer;
        let dcfg = SynthConfig {
            n_train: 512,
            n_dev: 96,
            n_test: 96,
            ..SynthConfig::beer(Aspect::Aroma)
        };
        let data = SynBeer::generate(&dcfg, &mut dar_tensor::rng(60));
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 61);
        let mut rng = dar_tensor::rng(62);
        let pred = full_text_predictor(&cfg, &emb, &data, 12, &mut rng);
        let acc = full_text_accuracy(&pred, &data.dev, 32);
        assert!(acc > 0.75, "full-text predictor only reached {acc}");
    }

    #[test]
    fn skewed_predictor_learns_first_sentence_aspect_only() {
        // On Aroma data with Appearance-first sentences, a first-sentence
        // predictor cannot learn the Aroma label (it rarely sees the aroma
        // sentence): accuracy stays near chance on full reviews.
        let data = tiny_dataset(63);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 64);
        let mut rng = dar_tensor::rng(65);
        let pred = skewed_predictor(&cfg, &emb, &data, 5, &mut rng);
        let acc = full_text_accuracy(&pred, &data.dev, 32);
        assert!(acc < 0.8, "skewed predictor should not master aroma: {acc}");
    }

    #[test]
    fn skewed_generator_reaches_threshold() {
        let data = tiny_dataset(66);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 67);
        let mut rng = dar_tensor::rng(68);
        let (_gen, pre_acc) = skewed_generator(&cfg, &emb, &data, 0.75, &mut rng);
        assert!(pre_acc >= 0.75, "skew pretraining stopped at {pre_acc}");
    }

    #[test]
    fn max_len_covers_all_splits() {
        let data = tiny_dataset(69);
        let ml = max_len(&data);
        assert!(data.train.iter().all(|r| r.len() <= ml));
        assert!(data.test.iter().all(|r| r.len() <= ml));
    }
}
