//! `dar-core`: the paper's contribution — self-explaining rationalization
//! with **Discriminatively Aligned Rationalization (DAR)** — together with
//! the vanilla RNP framework it repairs and the published baselines it is
//! compared against.
//!
//! # The cooperative game
//!
//! A [`Generator`] selects a binary token mask `M` (Gumbel-softmax
//! straight-through, Eq. (1)); the rationale `Z = M ⊙ X` (embeddings zeroed
//! outside the mask) goes to a [`Predictor`] whose cross-entropy trains both
//! players (Eq. (2)), under the sparsity/coherence regularizer of Eq. (3)
//! ([`regularizer`]).
//!
//! # Rationale shift and DAR
//!
//! The game is prone to *rationale shift*: the generator can smuggle the
//! label through trivial patterns, the predictor overfits them, and its
//! feedback corrupts the generator further. DAR ([`models::Dar`]) adds a
//! predictor pretrained on the **full input** (Eq. (4)), frozen, as a
//! third-party discriminator whose loss on the rationale (Eq. (5)) aligns
//! `Z` with `X` (Theorem 1).
//!
//! # Quick start
//!
//! ```no_run
//! use dar_core::prelude::*;
//!
//! let mut rng = dar_core::rng(0);
//! let data = SynBeer::default_aspect(Aspect::Aroma, &mut rng);
//! let cfg = RationaleConfig { sparsity: 0.15, ..Default::default() };
//! let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
//! let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 10, &mut rng);
//! let max_len = pretrain::max_len(&data);
//! let mut dar = Dar::new(&cfg, &emb, disc, max_len, &mut rng);
//! let report = Trainer::default().fit(&mut dar, &data, &mut rng);
//! println!("rationale F1 = {:.1}", report.test.f1 * 100.0);
//! ```

pub mod config;
pub mod embedder;
pub mod eval;
pub mod fault;
pub mod generator;
pub mod guard;
pub mod models;
pub mod predictor;
pub mod pretrain;
pub mod regularizer;
pub mod sentence;
pub mod stream;
pub mod trainer;

pub use config::{EncoderKind, RationaleConfig, TrainConfig};
pub use embedder::SharedEmbedding;
pub use eval::{class_metrics, evaluate_model, ClassMetrics, RationaleMetrics};
pub use generator::Generator;
pub use guard::{GuardPolicy, GuardedReport, GuardedTrainer, TrainEvent};
pub use models::{Inference, RationaleModel};
pub use predictor::Predictor;
pub use stream::{
    spawn_online_trainer, CandidateMsg, FeedConfig, OnlineTrainer, OnlineTrainerConfig, ReviewFeed,
};
pub use trainer::{TrainReport, Trainer};

pub use dar_tensor::{rng, Rng, Tensor};

/// Convenient glob-import surface for examples and benches.
pub mod prelude {
    pub use crate::config::{EncoderKind, RationaleConfig, TrainConfig};
    pub use crate::embedder::SharedEmbedding;
    pub use crate::eval::{class_metrics, evaluate_model, RationaleMetrics};
    pub use crate::fault::{ChaosModel, ChaosPlan, FaultPlan, FaultyModel, StallPlan};
    pub use crate::generator::Generator;
    pub use crate::guard::{GuardPolicy, GuardReason, GuardedReport, GuardedTrainer, TrainEvent};
    pub use crate::models::{
        A2r, Car, Dar, Dmr, Inference, InterRat, RationaleModel, Rnp, ThreePlayer, Vib,
    };
    pub use crate::predictor::Predictor;
    pub use crate::pretrain;
    pub use crate::sentence::{SentenceGenerator, SentenceRnp, SentenceSplitter};
    pub use crate::trainer::{TrainReport, Trainer};
    pub use dar_data::{Aspect, AspectDataset, Batch, BatchIter, SynBeer, SynHotel, SynthConfig};
    pub use dar_nn::Module;
}
