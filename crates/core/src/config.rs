//! Model and training configuration.

/// Which encoder architecture the players use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Bidirectional GRU — the paper's main setting (§V-A "Models").
    BiGru,
    /// Small pretrained transformer — the BERT substitute of Table VI.
    Transformer,
}

/// Hyper-parameters of a rationalization model.
///
/// Dimensions default to a CPU-sized version of the paper's setup
/// (100-d GloVe embeddings, 200-d BiGRU): the *ratios* are preserved while
/// absolute sizes keep training tractable without a GPU.
#[derive(Debug, Clone, Copy)]
pub struct RationaleConfig {
    pub encoder: EncoderKind,
    /// Embedding dimension (paper: 100-d GloVe).
    pub emb_dim: usize,
    /// GRU hidden size per direction (paper: 200).
    pub hidden: usize,
    /// Number of classes (binary sentiment).
    pub classes: usize,
    /// Target rationale sparsity `α` of Eq. (3), set near the
    /// human-annotation sparsity of the dataset.
    pub sparsity: f32,
    /// Sparsity weight `λ1` of Eq. (3).
    pub lambda1: f32,
    /// Coherence weight `λ2` of Eq. (3).
    pub lambda2: f32,
    /// Gumbel-softmax temperature.
    pub tau: f32,
    /// Adam learning rate (paper Table X uses 1e-4–2e-4 at 200-d scale).
    pub lr: f32,
    /// Weight of auxiliary losses (DAR's discriminative term, A2R's JS,
    /// DMR's matching, ...).
    pub aux_weight: f32,
}

impl Default for RationaleConfig {
    fn default() -> Self {
        RationaleConfig {
            encoder: EncoderKind::BiGru,
            emb_dim: 50,
            hidden: 64,
            classes: 2,
            sparsity: 0.15,
            lambda1: 1.0,
            lambda2: 1.0,
            tau: 0.7,
            lr: 1e-3,
            aux_weight: 1.0,
        }
    }
}

impl RationaleConfig {
    /// Encoder output feature dimension.
    pub fn enc_out_dim(&self) -> usize {
        match self.encoder {
            EncoderKind::BiGru => 2 * self.hidden,
            EncoderKind::Transformer => self.emb_dim,
        }
    }
}

/// Training-loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    /// Early-stopping patience in epochs, keyed on dev accuracy (paper
    /// App. B); `None` disables early stopping.
    pub patience: Option<usize>,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Print one line per epoch.
    pub verbose: bool,
    /// Split each batch into this many fixed contiguous row-shards for
    /// gradient accumulation (see DESIGN.md §9). Shard boundaries are a
    /// pure function of batch size and this count — never of the thread
    /// budget — and shards are reduced in ascending order, so results for
    /// a given shard count are bit-identical on any `DAR_THREADS`.
    pub grad_accum_shards: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            patience: Some(8),
            clip: 5.0,
            verbose: false,
            grad_accum_shards: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enc_out_dim_by_kind() {
        let mut cfg = RationaleConfig::default();
        assert_eq!(cfg.enc_out_dim(), 128);
        cfg.encoder = EncoderKind::Transformer;
        assert_eq!(cfg.enc_out_dim(), cfg.emb_dim);
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = RationaleConfig::default();
        assert!(cfg.sparsity > 0.0 && cfg.sparsity < 1.0);
        assert!(cfg.tau > 0.0);
        let t = TrainConfig::default();
        assert!(t.epochs > 0 && t.batch_size > 0);
    }
}
