//! Evaluation: rationale quality (token-overlap P/R/F1 against human
//! annotations), sparsity, predictive accuracy with the rationale input,
//! and the paper's full-text accuracy probe (Fig. 3 / Fig. 6).

use dar_data::{BatchIter, Review};

use crate::models::RationaleModel;

/// Aggregate metrics over an annotated split.
#[derive(Debug, Clone, Copy)]
pub struct RationaleMetrics {
    /// Token-overlap precision against human annotation (micro).
    pub precision: f32,
    /// Token-overlap recall (micro).
    pub recall: f32,
    /// Token-overlap F1 (micro).
    pub f1: f32,
    /// Mean fraction of tokens selected (the `S` column).
    pub sparsity: f32,
    /// Accuracy with the rationale as input (`Acc`), when the model
    /// predicts from rationales (CAR/DMR-style label-conditioned selectors
    /// report `None`).
    pub acc: Option<f32>,
    /// Accuracy of the same predictor on the full input — the alignment
    /// probe of Fig. 3b / Fig. 6.
    pub full_text_acc: Option<f32>,
}

impl RationaleMetrics {
    /// Render like a paper table row: `S  Acc  P  R  F1` in percent.
    pub fn row(&self) -> String {
        let acc = self
            .acc
            .map_or("N/A ".to_owned(), |a| format!("{:5.1}", a * 100.0));
        format!(
            "{:5.1} {acc} {:5.1} {:5.1} {:5.1}",
            self.sparsity * 100.0,
            self.precision * 100.0,
            self.recall * 100.0,
            self.f1 * 100.0
        )
    }
}

/// Per-class predictive precision/recall/F1 (Table I). `precision` is NaN
/// when the class is never predicted, mirroring the paper's "nan" entries.
#[derive(Debug, Clone, Copy)]
pub struct ClassMetrics {
    pub precision: f32,
    pub recall: f32,
    pub f1: f32,
}

/// Compute [`ClassMetrics`] of predictions for one class.
pub fn class_metrics(preds: &[usize], gold: &[usize], class: usize) -> ClassMetrics {
    assert_eq!(preds.len(), gold.len());
    let tp = preds
        .iter()
        .zip(gold)
        .filter(|&(&p, &g)| p == class && g == class)
        .count() as f32;
    let pred_pos = preds.iter().filter(|&&p| p == class).count() as f32;
    let gold_pos = gold.iter().filter(|&&g| g == class).count() as f32;
    let precision = tp / pred_pos; // NaN when 0/0, as in Table I.
    let recall = if gold_pos > 0.0 {
        tp / gold_pos
    } else {
        f32::NAN
    };
    let f1 = if precision.is_nan() || (precision + recall) == 0.0 {
        f32::NAN
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ClassMetrics {
        precision,
        recall,
        f1,
    }
}

/// Evaluate a model over annotated reviews.
pub fn evaluate_model(
    model: &dyn RationaleModel,
    reviews: &[Review],
    batch_size: usize,
) -> RationaleMetrics {
    let mut tp = 0usize;
    let mut selected = 0usize;
    let mut annotated = 0usize;
    let mut tokens = 0usize;
    let mut correct = 0usize;
    let mut full_correct = 0usize;
    let mut n_pred = 0usize;
    let mut has_logits = false;
    let mut has_full = false;

    for batch in BatchIter::sequential(reviews, batch_size) {
        let inf = dar_tensor::no_grad(|| model.infer(&batch));
        for (i, rat) in batch.rationales.iter().enumerate() {
            let len = batch.lengths[i];
            for (t, &ann) in rat.iter().enumerate().take(len) {
                let sel = inf.masks[i][t] > 0.5;
                tp += (sel && ann) as usize;
                selected += sel as usize;
                annotated += ann as usize;
            }
            tokens += len;
        }
        if let Some(logits) = &inf.logits {
            has_logits = true;
            for (p, &g) in logits.argmax_rows().iter().zip(&batch.labels) {
                correct += (*p == g) as usize;
            }
        }
        if let Some(full) = &inf.full_logits {
            has_full = true;
            for (p, &g) in full.argmax_rows().iter().zip(&batch.labels) {
                full_correct += (*p == g) as usize;
            }
        }
        n_pred += batch.len();
    }

    let precision = if selected > 0 {
        tp as f32 / selected as f32
    } else {
        0.0
    };
    let recall = if annotated > 0 {
        tp as f32 / annotated as f32
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    RationaleMetrics {
        precision,
        recall,
        f1,
        sparsity: if tokens > 0 {
            selected as f32 / tokens as f32
        } else {
            0.0
        },
        acc: has_logits.then(|| correct as f32 / n_pred as f32),
        full_text_acc: has_full.then(|| full_correct as f32 / n_pred as f32),
    }
}

/// Predicted labels of the model's full-text path over a split (Table I
/// inputs).
pub fn full_text_predictions(
    model: &dyn RationaleModel,
    reviews: &[Review],
    batch_size: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut preds = Vec::with_capacity(reviews.len());
    let mut gold = Vec::with_capacity(reviews.len());
    for batch in BatchIter::sequential(reviews, batch_size) {
        let inf = dar_tensor::no_grad(|| model.infer(&batch));
        let logits = inf.full_logits.expect("model has no full-text path");
        preds.extend(logits.argmax_rows());
        gold.extend_from_slice(&batch.labels);
    }
    (preds, gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Inference;
    use dar_data::Batch;
    use dar_tensor::Tensor;

    /// A stub model that selects exactly the annotated tokens and predicts
    /// the gold label.
    struct Oracle;
    impl RationaleModel for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn params(&self) -> Vec<Tensor> {
            Vec::new()
        }
        fn train_step(&mut self, _: &Batch, _: &mut dar_tensor::Rng) -> f32 {
            0.0
        }
        fn infer(&self, batch: &Batch) -> Inference {
            let masks: Vec<Vec<f32>> = batch
                .rationales
                .iter()
                .map(|r| r.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
                .collect();
            let mut logits = vec![0.0f32; batch.len() * 2];
            for (i, &l) in batch.labels.iter().enumerate() {
                logits[i * 2 + l] = 10.0;
            }
            let logits = Tensor::new(logits, &[batch.len(), 2]);
            Inference {
                masks,
                logits: Some(logits.clone()),
                full_logits: Some(logits),
            }
        }
    }

    /// A stub that selects everything and predicts class 0 always.
    struct AllSelector;
    impl RationaleModel for AllSelector {
        fn name(&self) -> &'static str {
            "all"
        }
        fn params(&self) -> Vec<Tensor> {
            Vec::new()
        }
        fn train_step(&mut self, _: &Batch, _: &mut dar_tensor::Rng) -> f32 {
            0.0
        }
        fn infer(&self, batch: &Batch) -> Inference {
            let masks = vec![vec![1.0; batch.seq_len()]; batch.len()];
            let mut logits = vec![0.0f32; batch.len() * 2];
            for i in 0..batch.len() {
                logits[i * 2] = 5.0;
            }
            Inference {
                masks,
                logits: Some(Tensor::new(logits, &[batch.len(), 2])),
                full_logits: None,
            }
        }
    }

    fn reviews() -> Vec<Review> {
        vec![
            Review {
                ids: vec![3, 4, 5, 6],
                label: 1,
                rationale: vec![false, true, true, false],
                first_sentence_end: 2,
            },
            Review {
                ids: vec![7, 8],
                label: 0,
                rationale: vec![true, false],
                first_sentence_end: 2,
            },
        ]
    }

    #[test]
    fn oracle_scores_perfectly() {
        let m = evaluate_model(&Oracle, &reviews(), 2);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.acc, Some(1.0));
        assert_eq!(m.full_text_acc, Some(1.0));
        assert!((m.sparsity - 0.5).abs() < 1e-6);
    }

    #[test]
    fn all_selector_has_full_recall_low_precision() {
        let m = evaluate_model(&AllSelector, &reviews(), 1);
        assert_eq!(m.recall, 1.0);
        assert!((m.precision - 0.5).abs() < 1e-6);
        assert_eq!(m.sparsity, 1.0);
        assert_eq!(m.acc, Some(0.5)); // predicts 0 always; one gold 0.
        assert_eq!(m.full_text_acc, None);
    }

    #[test]
    fn class_metrics_nan_when_never_predicted() {
        // Predict all-negative: positive-class precision must be NaN
        // (Table I's "nan" for Cleanliness).
        let cm = class_metrics(&[0, 0, 0, 0], &[0, 1, 0, 1], 1);
        assert!(cm.precision.is_nan());
        assert_eq!(cm.recall, 0.0);
        assert!(cm.f1.is_nan());
    }

    #[test]
    fn class_metrics_mixed() {
        let cm = class_metrics(&[1, 1, 0, 0], &[1, 0, 1, 0], 1);
        assert!((cm.precision - 0.5).abs() < 1e-6);
        assert!((cm.recall - 0.5).abs() < 1e-6);
        assert!((cm.f1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn row_formats_na() {
        let m = RationaleMetrics {
            precision: 0.5,
            recall: 0.25,
            f1: 1.0 / 3.0,
            sparsity: 0.1,
            acc: None,
            full_text_acc: None,
        };
        assert!(m.row().contains("N/A"));
    }
}
