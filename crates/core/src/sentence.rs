//! Sentence-level rationale selection — the "os" (one-sentence) regime of
//! the paper's Table II rows quoted from A2R, where the generator picks
//! one whole sentence instead of individual tokens. Provided as an
//! extension: the paper's own re-implementations (and this repo's main
//! results) use the harder token-level selection.

use std::collections::HashSet;

use dar_data::Batch;
use dar_nn::gumbel::{gumbel_softmax_st, hard_softmax_st};
use dar_nn::loss::cross_entropy;
use dar_nn::{Linear, Module};
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};
use dar_text::Vocab;

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Encoder;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;

/// Splits id sequences into sentences at terminal punctuation.
#[derive(Debug, Clone)]
pub struct SentenceSplitter {
    terminal_ids: HashSet<usize>,
}

impl SentenceSplitter {
    /// Build from a vocabulary: `.` and `!` end sentences.
    pub fn from_vocab(vocab: &Vocab) -> Self {
        let terminal_ids = [".", "!"]
            .iter()
            .filter(|t| vocab.contains(t))
            .map(|t| vocab.id(t))
            .collect();
        SentenceSplitter { terminal_ids }
    }

    /// Sentence spans `(start, end_exclusive)` of an id sequence; the
    /// terminator belongs to its sentence. A trailing fragment without a
    /// terminator forms a final sentence.
    pub fn spans(&self, ids: &[usize]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut start = 0usize;
        for (i, id) in ids.iter().enumerate() {
            if self.terminal_ids.contains(id) {
                spans.push((start, i + 1));
                start = i + 1;
            }
        }
        if start < ids.len() {
            spans.push((start, ids.len()));
        }
        if spans.is_empty() {
            spans.push((0, ids.len().max(1)));
        }
        spans
    }
}

/// A generator that scores sentences and selects exactly one
/// (straight-through over the sentence axis).
pub struct SentenceGenerator {
    pub embedding: SharedEmbedding,
    pub encoder: Encoder,
    pub head: Linear,
    splitter: SentenceSplitter,
    tau: f32,
}

impl SentenceGenerator {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        splitter: SentenceSplitter,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        SentenceGenerator {
            embedding: embedding.clone(),
            encoder: Encoder::new(cfg, embedding.vocab(), max_len, rng),
            head: Linear::new(rng, cfg.enc_out_dim(), 1),
            splitter,
            tau: cfg.tau,
        }
    }

    /// Per-review sentence spans, truncated to real (unpadded) tokens.
    pub fn batch_spans(&self, batch: &Batch) -> Vec<Vec<(usize, usize)>> {
        batch
            .ids
            .iter()
            .zip(&batch.lengths)
            .map(|(ids, &len)| self.splitter.spans(&ids[..len]))
            .collect()
    }

    /// Sample a token mask `[b, l]` that covers exactly one sentence per
    /// review (Gumbel-ST during training, argmax at eval).
    pub fn sample_mask(&self, batch: &Batch, rng: Option<&mut Rng>) -> Tensor {
        let spans = self.batch_spans(batch);
        let b = batch.len();
        let l = batch.seq_len();
        let s_max = spans.iter().map(Vec::len).max().unwrap_or(1);

        let x = self.embedding.lookup(&batch.ids);
        let h = self.encoder.forward(&x, &batch.mask); // [b, l, d]
        let d = h.shape()[2];

        // Mean-pool each sentence with a constant [b, s_max, l] matrix.
        let mut pool = vec![0.0f32; b * s_max * l];
        let mut pad = vec![0.0f32; b * s_max]; // -1e9 on missing sentences
        for (i, review_spans) in spans.iter().enumerate() {
            for (s, &(st, en)) in review_spans.iter().enumerate() {
                let w = 1.0 / (en - st).max(1) as f32;
                for t in st..en {
                    pool[(i * s_max + s) * l + t] = w;
                }
            }
            for s in review_spans.len()..s_max {
                pad[i * s_max + s] = -1e9;
            }
        }
        let pool_t = Tensor::new(pool, &[b, s_max, l]);
        let sent_repr = pool_t.bmm(&h); // [b, s_max, d]
        let logits = self
            .head
            .forward(&sent_repr.reshape(&[b * s_max, d]))
            .reshape(&[b, s_max])
            .add(&Tensor::new(pad, &[b, s_max]));

        // One-hot over sentences, straight-through.
        let sel = match rng {
            Some(r) => gumbel_softmax_st(&logits, self.tau, r),
            None => hard_softmax_st(&logits),
        }; // [b, s_max]

        // Scatter the sentence choice back to a token mask: member[b,s,l]
        // is 1 where token t belongs to sentence s.
        let mut member = vec![0.0f32; b * s_max * l];
        for (i, review_spans) in spans.iter().enumerate() {
            for (s, &(st, en)) in review_spans.iter().enumerate() {
                for t in st..en {
                    member[(i * s_max + s) * l + t] = 1.0;
                }
            }
        }
        let member_t = Tensor::new(member, &[b, s_max, l]);
        sel.reshape(&[b, 1, s_max])
            .bmm(&member_t)
            .reshape(&[b, l])
            .mul(&batch.mask)
    }
}

impl Module for SentenceGenerator {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        p.extend(self.head.params());
        p
    }
}

/// RNP with one-sentence selection — the "os" rows of Table II.
pub struct SentenceRnp {
    pub cfg: RationaleConfig,
    pub gen: SentenceGenerator,
    pub pred: Predictor,
    opt: Adam,
    clip: f32,
}

impl SentenceRnp {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        splitter: SentenceSplitter,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        SentenceRnp {
            cfg: *cfg,
            gen: SentenceGenerator::new(cfg, embedding, splitter, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }
}

impl RationaleModel for SentenceRnp {
    fn name(&self) -> &'static str {
        "RNP-os"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let z = self.gen.sample_mask(batch, Some(rng));
        // One-sentence selection needs no sparsity/coherence regularizer:
        // the structure is enforced by construction (as in A2R*).
        let loss = cross_entropy(&self.pred.forward_masked(batch, &z), &batch.labels);
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = crate::models::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn splitter_finds_sentences() {
        let mut vocab = Vocab::empty();
        let dot = vocab.insert(".");
        let bang = vocab.insert("!");
        let w = vocab.insert("w");
        let sp = SentenceSplitter::from_vocab(&vocab);
        let ids = vec![w, w, dot, w, bang, w];
        assert_eq!(sp.spans(&ids), vec![(0, 3), (3, 5), (5, 6)]);
    }

    #[test]
    fn splitter_handles_no_terminator() {
        let mut vocab = Vocab::empty();
        let w = vocab.insert("w");
        let sp = SentenceSplitter::from_vocab(&vocab);
        assert_eq!(sp.spans(&[w, w, w]), vec![(0, 3)]);
    }

    #[test]
    fn mask_covers_exactly_one_sentence() {
        let data = tiny_dataset(140);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 141);
        let mut rng = dar_tensor::rng(142);
        let sp = SentenceSplitter::from_vocab(&data.vocab);
        let gen = SentenceGenerator::new(&cfg, &emb, sp, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.test, 6).next().unwrap();
        let z = gen.sample_mask(&batch, None);
        let spans = gen.batch_spans(&batch);
        let zv = z.to_vec();
        let l = batch.seq_len();
        for (i, review_spans) in spans.iter().enumerate() {
            let row = &zv[i * l..(i + 1) * l];
            // Exactly one span fully selected; everything else zero.
            let mut selected_spans = 0;
            for &(st, en) in review_spans {
                let ones = row[st..en].iter().filter(|&&v| v == 1.0).count();
                if ones > 0 {
                    assert_eq!(ones, en - st, "partial sentence selected");
                    selected_spans += 1;
                }
            }
            assert_eq!(selected_spans, 1, "selected {selected_spans} sentences");
            let total: f32 = row.iter().sum();
            let span_len = review_spans
                .iter()
                .map(|&(st, en)| en - st)
                .find(|&len| (total as usize) == len);
            assert!(span_len.is_some(), "mask does not match any span length");
        }
    }

    #[test]
    fn sentence_rnp_trains() {
        let data = tiny_dataset(143);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 144);
        let mut rng = dar_tensor::rng(145);
        let sp = SentenceSplitter::from_vocab(&data.vocab);
        let mut model = SentenceRnp::new(&cfg, &emb, sp, max_len(&data), &mut rng);
        for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(3) {
            assert!(model.train_step(&batch, &mut rng).is_finite());
        }
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let inf = model.infer(&batch);
        assert!(inf.logits.is_some());
        // Sentence masks are binary by construction.
        assert!(inf.masks.iter().flatten().all(|&v| v == 0.0 || v == 1.0));
    }
}
