//! The predictor player `f_P`: classifies from masked (rationale)
//! embeddings, guaranteeing the *certification of exclusion* — tokens
//! outside the mask are zeroed before the encoder and cannot contribute.

use dar_data::Batch;
use dar_nn::pooling::masked_max_pool;
use dar_nn::{Linear, Module};
use dar_tensor::{Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Encoder;

/// Encoder + masked max-pool + linear classification head.
pub struct Predictor {
    pub embedding: SharedEmbedding,
    pub encoder: Encoder,
    pub head: Linear,
}

impl Predictor {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        let encoder = Encoder::new(cfg, embedding.vocab(), max_len, rng);
        let head = Linear::new(rng, cfg.enc_out_dim(), cfg.classes);
        Predictor {
            embedding: embedding.clone(),
            encoder,
            head,
        }
    }

    /// Classify from a rationale: embeddings are multiplied by the binary
    /// mask `z [b, l]` (Eq. (1)'s `Z = M ⊙ X`), so unselected tokens are
    /// zero vectors to the encoder.
    pub fn forward_masked(&self, batch: &Batch, z: &Tensor) -> Tensor {
        let b = batch.len();
        let l = batch.seq_len();
        assert_eq!(z.shape(), &[b, l], "rationale mask shape mismatch");
        let x = self.embedding.lookup(&batch.ids);
        let masked = x.mul(&z.reshape(&[b, l, 1]));
        let h = self.encoder.forward(&masked, &batch.mask);
        self.head.forward(&masked_max_pool(&h, &batch.mask))
    }

    /// Classify from the full input (`z = 1` everywhere) — the paper's
    /// full-text probe and the `predictor^t` input path.
    pub fn forward_full(&self, batch: &Batch) -> Tensor {
        self.forward_masked(batch, &batch.mask.clone())
    }
}

impl Module for Predictor {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        p.extend(self.head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_data::Review;

    fn batch_from(idss: Vec<Vec<usize>>) -> Batch {
        let reviews: Vec<Review> = idss
            .into_iter()
            .map(|ids| Review {
                rationale: vec![false; ids.len()],
                first_sentence_end: 1,
                label: 0,
                ids,
            })
            .collect();
        let refs: Vec<&Review> = reviews.iter().collect();
        Batch::from_reviews(&refs).expect("non-empty fixture")
    }

    fn predictor() -> Predictor {
        let mut rng = dar_tensor::rng(0);
        let emb = SharedEmbedding::random(32, 8, &mut rng);
        let cfg = RationaleConfig {
            emb_dim: 8,
            hidden: 6,
            ..Default::default()
        };
        Predictor::new(&cfg, &emb, 16, &mut rng)
    }

    #[test]
    fn output_shape() {
        let p = predictor();
        let b = batch_from(vec![vec![3, 4, 5], vec![6, 7, 8]]);
        let z = Tensor::ones(&[2, 3]);
        assert_eq!(p.forward_masked(&b, &z).shape(), &[2, 2]);
    }

    /// Certification of exclusion: changing an unselected token never
    /// changes the prediction.
    #[test]
    fn exclusion_certified() {
        let p = predictor();
        let z = Tensor::new(vec![1.0, 0.0, 1.0], &[1, 3]);
        let a = p
            .forward_masked(&batch_from(vec![vec![3, 4, 5]]), &z)
            .to_vec();
        let b = p
            .forward_masked(&batch_from(vec![vec![3, 29, 5]]), &z)
            .to_vec();
        assert_eq!(a, b, "unselected token influenced the prediction");
    }

    /// Selected tokens must matter.
    #[test]
    fn selected_tokens_matter() {
        let p = predictor();
        let z = Tensor::new(vec![1.0, 0.0, 1.0], &[1, 3]);
        let a = p
            .forward_masked(&batch_from(vec![vec![3, 4, 5]]), &z)
            .to_vec();
        let b = p
            .forward_masked(&batch_from(vec![vec![17, 4, 5]]), &z)
            .to_vec();
        assert_ne!(a, b, "selected token had no influence");
    }

    #[test]
    fn full_text_uses_everything() {
        let p = predictor();
        let a = p.forward_full(&batch_from(vec![vec![3, 4, 5]])).to_vec();
        let b = p.forward_full(&batch_from(vec![vec![3, 29, 5]])).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn padding_never_contributes() {
        let p = predictor();
        // Same review, one padded next to a longer neighbor.
        let lone = p.forward_full(&batch_from(vec![vec![3, 4]])).to_vec();
        let padded = p.forward_full(&batch_from(vec![vec![3, 4], vec![5, 6, 7, 8]]));
        let first_row = &padded.to_vec()[..2];
        for (x, y) in lone.iter().zip(first_row) {
            assert!((x - y).abs() < 1e-5, "padding leaked: {x} vs {y}");
        }
    }
}
