//! Deterministic fault injection for exercising the fault-tolerant
//! training runtime.
//!
//! A [`FaultPlan`] schedules one-shot faults — a non-finite loss at a given
//! train step, NaN weights at a given step — and a [`FaultyModel`] wrapper
//! fires them around an inner [`RationaleModel`] without the model knowing.
//! File-corruption helpers ([`corrupt_truncate`], [`corrupt_bitflip`])
//! damage checkpoint files the way crashed writers and bad disks do, seeded
//! so every failure a test provokes is reproducible. [`malformed_review`]
//! fabricates the out-of-vocabulary input that
//! [`dar_data::Batch::from_reviews_checked`] must reject.

use std::path::Path;

use dar_data::Review;
use dar_tensor::optim::AdamState;
use dar_tensor::{DarError, DarResult, Rng, Tensor};
use rand::Rng as _;

use crate::models::{Inference, RationaleModel};

// The storage-level fault substrate lives in `dar-store` (seeded short
// writes, torn tails, bit flips, ENOSPC, failed renames, and the
// abort-at-Nth-write crash valve); re-exported here so fault-injection
// users have one front door.
pub use dar_store::{FaultyStorage, RealStorage, Storage, StorageFaultPlan};

/// One-shot fault schedule, counted in train steps of the wrapped model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Return a NaN loss from this (0-based) train step.
    pub nan_loss_at_step: Option<usize>,
    /// Poison the first parameter tensor with NaNs after this step —
    /// simulates a numerically diverged update reaching the weights.
    pub nan_weights_at_step: Option<usize>,
    /// Add this to every loss (drives the spike guard without breaking
    /// finiteness) at the scheduled step.
    pub loss_spike_at_step: Option<(usize, f32)>,
    /// Return NaN losses from this step *onward* — a persistent fault no
    /// amount of rollback can outrun (exhausts the retry budget).
    pub nan_loss_from_step: Option<usize>,
    /// Produce the NaN loss at this step through a *real* tensor op
    /// (`0/0` via [`Tensor::div`]) instead of overwriting the float, so
    /// taint tracking can attribute the fault to its originating op.
    pub taint_nan_at_step: Option<usize>,
}

impl FaultPlan {
    /// No faults; the wrapper is transparent.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn nan_loss_at(step: usize) -> Self {
        FaultPlan {
            nan_loss_at_step: Some(step),
            ..Default::default()
        }
    }

    pub fn nan_weights_at(step: usize) -> Self {
        FaultPlan {
            nan_weights_at_step: Some(step),
            ..Default::default()
        }
    }

    pub fn loss_spike_at(step: usize, magnitude: f32) -> Self {
        FaultPlan {
            loss_spike_at_step: Some((step, magnitude)),
            ..Default::default()
        }
    }

    pub fn nan_loss_from(step: usize) -> Self {
        FaultPlan {
            nan_loss_from_step: Some(step),
            ..Default::default()
        }
    }

    pub fn taint_nan_at(step: usize) -> Self {
        FaultPlan {
            taint_nan_at_step: Some(step),
            ..Default::default()
        }
    }
}

/// Wraps a model and fires the [`FaultPlan`] during training. Inference,
/// parameters, snapshots, and optimizer state pass straight through, so
/// the wrapper composes with checkpointing and the guards.
pub struct FaultyModel<M: RationaleModel> {
    inner: M,
    plan: FaultPlan,
    step: usize,
    /// Train steps observed (for assertions in tests).
    pub steps_taken: usize,
}

impl<M: RationaleModel> FaultyModel<M> {
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        FaultyModel {
            inner,
            plan,
            step: 0,
            steps_taken: 0,
        }
    }

    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Apply the plan's faults for `step` to a finished step's loss.
    fn inject(&mut self, step: usize, mut loss: f32) -> f32 {
        if self.plan.nan_loss_at_step == Some(step) {
            loss = f32::NAN;
        }
        if self.plan.nan_weights_at_step == Some(step) {
            if let Some(p) = self.inner.params().first() {
                p.set_values(vec![f32::NAN; p.len()]);
            }
        }
        if let Some((s, magnitude)) = self.plan.loss_spike_at_step {
            if s == step {
                loss += magnitude;
            }
        }
        if self.plan.nan_loss_from_step.is_some_and(|s| step >= s) {
            loss = f32::NAN;
        }
        if self.plan.taint_nan_at_step == Some(step) {
            // 0/0 through the graph: the resulting NaN is scanned by the
            // taint layer and latched with op name "div".
            let zero = Tensor::new(vec![0.0], &[1]);
            loss = zero.div(&zero).item();
        }
        loss
    }
}

impl<M: RationaleModel> RationaleModel for FaultyModel<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn params(&self) -> Vec<Tensor> {
        self.inner.params()
    }

    fn train_step(&mut self, batch: &dar_data::Batch, rng: &mut Rng) -> f32 {
        let step = self.step;
        self.step += 1;
        self.steps_taken += 1;
        let loss = self.inner.train_step(batch, rng);
        self.inject(step, loss)
    }

    fn train_step_sharded(&mut self, batch: &dar_data::Batch, rng: &mut Rng, shards: usize) -> f32 {
        let step = self.step;
        self.step += 1;
        self.steps_taken += 1;
        let loss = self.inner.train_step_sharded(batch, rng, shards);
        self.inject(step, loss)
    }

    fn infer(&self, batch: &dar_data::Batch) -> Inference {
        self.inner.infer(batch)
    }

    fn predict_full_text(&self, batch: &dar_data::Batch) -> Option<Tensor> {
        self.inner.predict_full_text(batch)
    }

    fn player_modules(&self) -> (usize, usize) {
        self.inner.player_modules()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        self.inner.optim_states()
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        self.inner.restore_optim(states)
    }
}

/// Serving-side chaos schedule: trigger **token ids** that fire faults
/// inside [`RationaleModel::infer`] only. The full-text path
/// (`predict_full_text`) stays clean, modelling a failure localized to
/// the generator — exactly the situation the serving breaker's
/// predictor-only degraded mode exists for.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosPlan {
    /// A batch containing this token panics mid-`infer`.
    pub panic_token: Option<usize>,
    /// A batch containing this token returns an all-zero rationale
    /// (collapse) from `infer`.
    pub collapse_token: Option<usize>,
    /// A batch containing this token sleeps this many milliseconds
    /// before `infer` returns.
    pub slow_token: Option<(usize, u64)>,
    /// A batch containing this token panics inside `predict_full_text`
    /// too — the fault that drives a breaker past predictor-only
    /// degradation into a full shed.
    pub full_panic_token: Option<usize>,
    /// A batch containing this token gets its `infer` logits poisoned
    /// with NaN through a real `0/0` div op, so the serving taint layer
    /// can attribute the failure to `div`.
    pub nan_logit_token: Option<usize>,
    /// Stall faults: the worker wedges inside `infer` without panicking
    /// — the failure class the serving watchdog (DESIGN.md §16) exists
    /// for, invisible to panic-based supervision.
    pub stall: StallPlan,
}

/// Wedge schedule for [`ChaosModel`]: trigger tokens that make `infer`
/// hang. `sleep` models a worker blocked on I/O or a lock (scheduled but
/// silent); `spin` models a livelock burning its core. `sticky = false`
/// arms the plan once — the first triggered batch stalls, later ones run
/// clean (a transient wedge the replica recovers from); `sticky = true`
/// stalls every triggered batch (a permanently wedged replica that can
/// only be quarantined).
#[derive(Debug, Clone, Copy, Default)]
pub struct StallPlan {
    /// `(token, millis)`: a triggered batch sleeps this long in `infer`.
    pub sleep_token: Option<(usize, u64)>,
    /// `(token, millis)`: a triggered batch busy-spins this long.
    pub spin_token: Option<(usize, u64)>,
    /// Every triggered batch stalls, not just the first.
    pub sticky: bool,
}

impl StallPlan {
    pub fn is_armed(&self) -> bool {
        self.sleep_token.is_some() || self.spin_token.is_some()
    }
}

impl ChaosPlan {
    fn batch_has(batch: &dar_data::Batch, token: usize) -> bool {
        batch.ids.iter().flatten().any(|&t| t == token)
    }
}

/// Wraps a model and fires the [`ChaosPlan`] during inference. Training,
/// parameters, snapshots, optimizer state, and the full-text prediction
/// path all pass straight through.
pub struct ChaosModel<M: RationaleModel> {
    inner: M,
    plan: ChaosPlan,
    /// One-shot latch for a non-sticky [`StallPlan`]: set by the first
    /// triggered batch so later batches run clean. Atomic because
    /// `infer` takes `&self`.
    stall_fired: std::sync::atomic::AtomicBool,
}

impl<M: RationaleModel> ChaosModel<M> {
    pub fn new(inner: M, plan: ChaosPlan) -> Self {
        ChaosModel {
            inner,
            plan,
            stall_fired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Should a triggered batch stall right now? Consumes the one-shot
    /// arming for non-sticky plans.
    fn stall_due(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.plan.stall.sticky || !self.stall_fired.swap(true, Ordering::SeqCst)
    }
}

impl<M: RationaleModel> RationaleModel for ChaosModel<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn params(&self) -> Vec<Tensor> {
        self.inner.params()
    }

    fn train_step(&mut self, batch: &dar_data::Batch, rng: &mut Rng) -> f32 {
        self.inner.train_step(batch, rng)
    }

    fn train_step_sharded(&mut self, batch: &dar_data::Batch, rng: &mut Rng, shards: usize) -> f32 {
        self.inner.train_step_sharded(batch, rng, shards)
    }

    fn infer(&self, batch: &dar_data::Batch) -> Inference {
        if let Some(t) = self.plan.panic_token {
            if ChaosPlan::batch_has(batch, t) {
                panic!("chaos: panic token {t} reached infer");
            }
        }
        if let Some((t, ms)) = self.plan.slow_token {
            if ChaosPlan::batch_has(batch, t) {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        if let Some((t, ms)) = self.plan.stall.sleep_token {
            if ChaosPlan::batch_has(batch, t) && self.stall_due() {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        if let Some((t, ms)) = self.plan.stall.spin_token {
            if ChaosPlan::batch_has(batch, t) && self.stall_due() {
                let until = std::time::Instant::now() + std::time::Duration::from_millis(ms);
                while std::time::Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
        let mut inf = self.inner.infer(batch);
        if let Some(t) = self.plan.collapse_token {
            if ChaosPlan::batch_has(batch, t) {
                for row in &mut inf.masks {
                    row.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
        if let Some(t) = self.plan.nan_logit_token {
            if ChaosPlan::batch_has(batch, t) {
                if let Some(logits) = inf.logits.take() {
                    // NaN through the graph (0/0 broadcast-added) so taint
                    // tracking sees a real `div` op produce it.
                    let zero = Tensor::new(vec![0.0], &[1, 1]);
                    inf.logits = Some(logits.add(&zero.div(&zero)));
                }
            }
        }
        inf
    }

    fn predict_full_text(&self, batch: &dar_data::Batch) -> Option<Tensor> {
        if let Some(t) = self.plan.full_panic_token {
            if ChaosPlan::batch_has(batch, t) {
                panic!("chaos: full-panic token {t} reached predict_full_text");
            }
        }
        self.inner.predict_full_text(batch)
    }

    fn player_modules(&self) -> (usize, usize) {
        self.inner.player_modules()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        self.inner.optim_states()
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        self.inner.restore_optim(states)
    }
}

/// Truncate a checkpoint file to a seeded random strict prefix — what a
/// crash mid-write (without the atomic rename) leaves behind.
pub fn corrupt_truncate(path: impl AsRef<Path>, seed: u64) -> DarResult<u64> {
    let path = path.as_ref();
    let len = std::fs::metadata(path)?.len();
    if len == 0 {
        return Err(DarError::InvalidData(
            "cannot truncate an empty file".to_owned(),
        ));
    }
    let mut rng = dar_tensor::rng(seed);
    let keep = rng.gen_range(0..len);
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    Ok(keep)
}

/// Append seeded garbage bytes (a torn half-frame) to a file — what a
/// crash mid-append leaves at the tail of a write-ahead log. Returns how
/// many bytes were appended. WAL replay must absorb exactly this damage
/// by truncating at the first bad frame.
pub fn corrupt_torn_tail(path: impl AsRef<Path>, seed: u64) -> DarResult<u64> {
    let mut rng = dar_tensor::rng(seed);
    let n = rng.gen_range(1usize..24);
    let garbage: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect();
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path.as_ref())?;
    f.write_all(&garbage)?;
    f.sync_all()?;
    Ok(n as u64)
}

/// Flip one seeded random bit in the file — a disk/transfer error. Returns
/// the (byte, bit) flipped.
pub fn corrupt_bitflip(path: impl AsRef<Path>, seed: u64) -> DarResult<(usize, u8)> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(DarError::InvalidData(
            "cannot bit-flip an empty file".to_owned(),
        ));
    }
    let mut rng = dar_tensor::rng(seed);
    let byte = rng.gen_range(0..bytes.len());
    let bit = rng.gen_range(0u8..8);
    bytes[byte] ^= 1 << bit;
    std::fs::write(path, &bytes)?;
    Ok((byte, bit))
}

/// A review whose ids stray outside the vocabulary — the malformed batch
/// the checked loader must reject.
pub fn malformed_review(vocab_size: usize, seed: u64) -> Review {
    let mut rng = dar_tensor::rng(seed);
    let len = rng.gen_range(3usize..12);
    let mut ids: Vec<usize> = (0..len)
        .map(|_| rng.gen_range(0..vocab_size.max(1)))
        .collect();
    let bad = rng.gen_range(0..len);
    ids[bad] = vocab_size + rng.gen_range(1usize..1000);
    Review {
        rationale: vec![false; ids.len()],
        label: rng.gen_range(0usize..2),
        first_sentence_end: 1,
        ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_data::Batch;
    use dar_tensor::serial;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_fault_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn truncated_checkpoint_never_loads() {
        let path = tmpfile("trunc");
        serial::save_path(&path, &[Tensor::param(vec![1.0; 32], &[32])]).unwrap();
        for seed in 0..20 {
            serial::save_path(&path, &[Tensor::param(vec![1.0; 32], &[32])]).unwrap();
            corrupt_truncate(&path, seed).unwrap();
            assert!(
                serial::load_checkpoint_path(&path).is_err(),
                "truncation with seed {seed} loaded"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bitflipped_checkpoint_never_loads() {
        let path = tmpfile("flip");
        for seed in 0..20 {
            serial::save_path(&path, &[Tensor::param(vec![0.25; 16], &[4, 4])]).unwrap();
            let (byte, bit) = corrupt_bitflip(&path, seed).unwrap();
            assert!(
                serial::load_checkpoint_path(&path).is_err(),
                "flip of byte {byte} bit {bit} (seed {seed}) loaded"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corruption_is_seeded_and_reproducible() {
        let a = tmpfile("repro_a");
        let b = tmpfile("repro_b");
        for p in [&a, &b] {
            serial::save_path(p, &[Tensor::param(vec![1.5; 64], &[64])]).unwrap();
        }
        assert_eq!(
            corrupt_bitflip(&a, 7).unwrap(),
            corrupt_bitflip(&b, 7).unwrap()
        );
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn chaos_collapse_fires_on_infer_and_spares_full_text() {
        use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
        use crate::models::Rnp;
        use dar_data::BatchIter;

        let data = tiny_dataset(300);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 301);
        let mut rng = dar_tensor::rng(302);
        let model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.test, 4).next().unwrap();
        let trigger = batch.ids[0][0];
        let absent = batch.ids.iter().flatten().max().unwrap() + 1;
        let baseline = model.infer(&batch).masks;

        let chaos = ChaosModel::new(
            model,
            ChaosPlan {
                collapse_token: Some(trigger),
                ..Default::default()
            },
        );
        let inf = chaos.infer(&batch);
        assert!(
            inf.masks.iter().flatten().all(|&v| v == 0.0),
            "collapse trigger left a selected token"
        );
        let full = chaos.predict_full_text(&batch).expect("full-text path");
        assert!(full.to_vec().iter().all(|v| v.is_finite()));

        // A batch without the trigger token passes through untouched.
        let clean = ChaosModel::new(
            chaos.into_inner(),
            ChaosPlan {
                collapse_token: Some(absent),
                slow_token: Some((absent, 50)),
                ..Default::default()
            },
        );
        assert_eq!(clean.infer(&batch).masks, baseline);
    }

    #[test]
    fn chaos_panic_token_kills_infer_only() {
        use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
        use crate::models::Rnp;
        use dar_data::BatchIter;

        let data = tiny_dataset(310);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 311);
        let mut rng = dar_tensor::rng(312);
        let model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.test, 2).next().unwrap();
        let trigger = batch.ids[0][0];
        let chaos = ChaosModel::new(
            model,
            ChaosPlan {
                panic_token: Some(trigger),
                ..Default::default()
            },
        );
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let crashed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos.infer(&batch))).is_err();
        std::panic::set_hook(hook);
        assert!(crashed, "panic token did not fire");
        // The generator path is dead; the full-text path still answers.
        assert!(chaos.predict_full_text(&batch).is_some());
    }

    #[test]
    fn stall_plan_one_shot_arms_once_and_sticky_repeats() {
        use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
        use crate::models::Rnp;
        use dar_data::BatchIter;

        let data = tiny_dataset(320);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 321);
        let mut rng = dar_tensor::rng(322);
        let model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.test, 2).next().unwrap();
        let trigger = batch.ids[0][0];

        let timed = |m: &dyn RationaleModel, b: &Batch| {
            let start = std::time::Instant::now();
            m.infer(b);
            start.elapsed()
        };

        let one_shot = ChaosModel::new(
            model,
            ChaosPlan {
                stall: StallPlan {
                    sleep_token: Some((trigger, 60)),
                    sticky: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let first = timed(&one_shot, &batch);
        let second = timed(&one_shot, &batch);
        assert!(first.as_millis() >= 60, "first triggered batch must stall");
        assert!(
            second < first,
            "one-shot plan must disarm after firing ({second:?} !< {first:?})"
        );

        let sticky = ChaosModel::new(
            one_shot.into_inner(),
            ChaosPlan {
                stall: StallPlan {
                    spin_token: Some((trigger, 30)),
                    sticky: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert!(timed(&sticky, &batch).as_millis() >= 30);
        assert!(
            timed(&sticky, &batch).as_millis() >= 30,
            "sticky plan must stall every triggered batch"
        );
    }

    #[test]
    fn malformed_review_is_rejected_by_checked_loader() {
        for seed in 0..10 {
            let bad = malformed_review(50, seed);
            match Batch::from_reviews_checked(&[&bad], 50) {
                Err(DarError::TokenOutOfRange { .. }) => {}
                Err(other) => panic!("seed {seed}: wrong error {other:?}"),
                Ok(_) => panic!("seed {seed}: malformed review accepted"),
            }
        }
    }
}
