//! Inter_RAT (Yue et al., 2023): interventional rationalization.
//! Simplified backdoor-style adjustment (DESIGN.md §4): alongside the RNP
//! loss, the unselected context of each review is intervened on (token ids
//! resampled from the batch) and the generator's soft selection is
//! regularized to be invariant to the intervention — removing selection
//! strategies that depend on spurious context instead of the rationale
//! content itself.

use rand::Rng as _;

use dar_data::Batch;
use dar_nn::loss::cross_entropy;
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// The interventional rationalization model.
pub struct InterRat {
    pub cfg: RationaleConfig,
    pub gen: Generator,
    pub pred: Predictor,
    opt: Adam,
    clip: f32,
}

impl InterRat {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        InterRat {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    /// An intervened copy of the batch: unselected (per `z`) real tokens
    /// are replaced by tokens drawn from other reviews in the batch.
    fn intervene(&self, batch: &Batch, z: &[f32], rng: &mut Rng) -> Batch {
        let l = batch.seq_len();
        let pool: Vec<usize> = batch
            .ids
            .iter()
            .flatten()
            .copied()
            .filter(|&t| t != 0)
            .collect();
        let mut ids = batch.ids.clone();
        let mask = batch.mask.to_vec();
        for (i, row) in ids.iter_mut().enumerate() {
            for (t, tok) in row.iter_mut().enumerate() {
                let real = mask[i * l + t] > 0.5;
                let selected = z[i * l + t] > 0.5;
                if real && !selected {
                    *tok = pool[rng.gen_range(0..pool.len())];
                }
            }
        }
        Batch {
            ids,
            mask: batch.mask.clone(),
            labels: batch.labels.clone(),
            rationales: batch.rationales.clone(),
            lengths: batch.lengths.clone(),
        }
    }

    fn loss(&self, batch: &Batch, rng: &mut Rng) -> Tensor {
        let z = self.gen.sample_mask(batch, Some(rng));
        let logits = self.pred.forward_masked(batch, &z);
        let base = cross_entropy(&logits, &batch.labels).add(&omega(&z, batch, &self.cfg));

        // Backdoor-style invariance: the soft selection on the intervened
        // context must match the original selection.
        let intervened = self.intervene(batch, &z.to_vec(), rng);
        let p_orig = self.gen.soft_probs(batch);
        let p_int = self.gen.soft_probs(&intervened);
        let invariance = p_orig.sub(&p_int).square().mean();
        base.add(&invariance.scale(self.cfg.aux_weight))
    }
}

impl RationaleModel for InterRat {
    fn name(&self) -> &'static str {
        "Inter_RAT"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let loss = self.loss(batch, rng);
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = super::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }

    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.pred.forward_full(batch))
    }

    fn player_modules(&self) -> (usize, usize) {
        (1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn intervention_only_touches_unselected_real_tokens() {
        let data = tiny_dataset(100);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 101);
        let mut rng = dar_tensor::rng(102);
        let model = InterRat::new(&cfg, &emb, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.train, 4).next().unwrap();
        let l = batch.seq_len();
        // Select the first two tokens of every review.
        let mut z = vec![0.0f32; batch.len() * l];
        for i in 0..batch.len() {
            z[i * l] = 1.0;
            z[i * l + 1] = 1.0;
        }
        let out = model.intervene(&batch, &z, &mut rng);
        let mask = batch.mask.to_vec();
        for i in 0..batch.len() {
            // Selected positions unchanged.
            assert_eq!(out.ids[i][0], batch.ids[i][0]);
            assert_eq!(out.ids[i][1], batch.ids[i][1]);
            // Padding unchanged.
            for t in 0..l {
                if mask[i * l + t] < 0.5 {
                    assert_eq!(out.ids[i][t], batch.ids[i][t]);
                }
            }
        }
        // Some unselected token changed (overwhelmingly likely).
        let changed = (0..batch.len())
            .any(|i| (2..l).any(|t| mask[i * l + t] > 0.5 && out.ids[i][t] != batch.ids[i][t]));
        assert!(changed, "intervention changed nothing");
    }

    #[test]
    fn trains_with_finite_loss() {
        let data = tiny_dataset(103);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 104);
        let mut rng = dar_tensor::rng(105);
        let mut model = InterRat::new(&cfg, &emb, max_len(&data), &mut rng);
        for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(3) {
            let loss = model.train_step(&batch, &mut rng);
            assert!(loss.is_finite());
        }
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let inf = model.infer(&batch);
        assert!(inf.logits.is_some());
    }
}
