//! 3PLAYER (Yu et al., 2019): introspective extraction with complement
//! control. A third player classifies from the **complement** of the
//! rationale; the generator plays adversarially against it, squeezing the
//! predictive information out of the unselected text and into the
//! rationale.

use dar_data::Batch;
use dar_nn::loss::cross_entropy;
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// The three-player game.
pub struct ThreePlayer {
    pub cfg: RationaleConfig,
    pub gen: Generator,
    pub pred: Predictor,
    /// Complement predictor, trained on `1 − M`.
    pub comp: Predictor,
    opt_main: Adam,
    opt_comp: Adam,
    clip: f32,
}

impl ThreePlayer {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        ThreePlayer {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            comp: Predictor::new(cfg, embedding, max_len, rng),
            opt_main: Adam::with_lr(cfg.lr),
            opt_comp: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    fn complement(z: &Tensor, batch: &Batch) -> Tensor {
        // 1 - z on real tokens, 0 on padding.
        z.neg().add_scalar(1.0).mul(&batch.mask)
    }
}

impl RationaleModel for ThreePlayer {
    fn name(&self) -> &'static str {
        "3PLAYER"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p.extend(self.comp.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        // Phase 1: complement player minimizes its own CE on the detached
        // complement.
        let z = self.gen.sample_mask(batch, Some(rng));
        let zc = Self::complement(&z, batch).detach();
        let c_params = self.comp.params();
        zero_grads(&c_params);
        let c_loss = cross_entropy(&self.comp.forward_masked(batch, &zc), &batch.labels);
        c_loss.backward();
        clip_grad_norm(&c_params, self.clip);
        self.opt_comp.step(&c_params);

        // Phase 2: generator + predictor minimize the main CE while
        // *maximizing* the complement player's CE (adversarial term).
        let mut main_params = self.gen.params();
        main_params.extend(self.pred.params());
        zero_grads(&main_params);
        let z = self.gen.sample_mask(batch, Some(rng));
        let logits = self.pred.forward_masked(batch, &z);
        let zc = Self::complement(&z, batch);
        let comp_ce = cross_entropy(&self.comp.forward_masked(batch, &zc), &batch.labels);
        let loss = cross_entropy(&logits, &batch.labels)
            .add(&comp_ce.scale(-self.cfg.aux_weight))
            .add(&omega(&z, batch, &self.cfg));
        loss.backward();
        self.comp.zero_grads();
        clip_grad_norm(&main_params, self.clip);
        self.opt_main.step(&main_params);

        c_loss.item() + loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        let mut main_params = self.gen.params();
        main_params.extend(self.pred.params());
        vec![
            self.opt_main.export_state(&main_params),
            self.opt_comp.export_state(&self.comp.params()),
        ]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [m, c] = super::expect_states::<2>(self.name(), states)?;
        let mut main_params = self.gen.params();
        main_params.extend(self.pred.params());
        self.opt_main.import_state(&main_params, m)?;
        let c_params = self.comp.params();
        self.opt_comp.import_state(&c_params, c)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }

    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.pred.forward_full(batch))
    }

    fn player_modules(&self) -> (usize, usize) {
        (1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn complement_partitions_real_tokens() {
        let data = tiny_dataset(110);
        let batch = BatchIter::sequential(&data.train, 4).next().unwrap();
        let l = batch.seq_len();
        let mut z = vec![0.0f32; 4 * l];
        for (i, zi) in z.iter_mut().enumerate() {
            if i % 3 == 0 {
                *zi = 1.0;
            }
        }
        let z = Tensor::new(z, &[4, l]).mul(&batch.mask);
        let zc = ThreePlayer::complement(&z, &batch);
        let (zv, zcv, mv) = (z.to_vec(), zc.to_vec(), batch.mask.to_vec());
        for i in 0..zv.len() {
            if mv[i] > 0.5 {
                assert_eq!(zv[i] + zcv[i], 1.0, "not a partition at {i}");
            } else {
                assert_eq!(zcv[i], 0.0, "complement selected padding");
            }
        }
    }

    #[test]
    fn both_phases_train_finite() {
        let data = tiny_dataset(111);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 112);
        let mut rng = dar_tensor::rng(113);
        let mut model = ThreePlayer::new(&cfg, &emb, max_len(&data), &mut rng);
        for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(3) {
            let loss = model.train_step(&batch, &mut rng);
            assert!(loss.is_finite());
        }
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        assert!(model.infer(&batch).logits.is_some());
    }
}
