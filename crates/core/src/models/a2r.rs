//! A2R (Yu et al., 2021): augments the predictor with an auxiliary head
//! that reads a **soft** attention-weighted input, and ties the two heads
//! with a JS-divergence term. The soft path keeps gradient flowing when the
//! hard game interlocks. Re-implemented at token level (re-A2R in the
//! paper's tables).

use dar_data::Batch;
use dar_nn::loss::{cross_entropy, js_div_logits};
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// A2R: generator + hard predictor + soft auxiliary predictor.
pub struct A2r {
    pub cfg: RationaleConfig,
    pub gen: Generator,
    pub pred: Predictor,
    pub aux: Predictor,
    opt: Adam,
    clip: f32,
}

impl A2r {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        A2r {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            aux: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    /// Build with an externally pretrained predictor (Table VII skew).
    pub fn with_predictor(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        pred: Predictor,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        A2r {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred,
            aux: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    fn loss(&self, batch: &Batch, rng: &mut Rng) -> Tensor {
        let z = self.gen.sample_mask(batch, Some(rng));
        let soft = self.gen.soft_probs(batch);
        let hard_logits = self.pred.forward_masked(batch, &z);
        let soft_logits = self.aux.forward_masked(batch, &soft);
        cross_entropy(&hard_logits, &batch.labels)
            .add(&cross_entropy(&soft_logits, &batch.labels))
            .add(&js_div_logits(&hard_logits, &soft_logits).scale(self.cfg.aux_weight))
            .add(&omega(&z, batch, &self.cfg))
    }
}

impl RationaleModel for A2r {
    fn name(&self) -> &'static str {
        "A2R"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p.extend(self.aux.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let loss = self.loss(batch, rng);
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = super::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }

    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.pred.forward_full(batch))
    }

    /// 1 generator + 2 predictors (Table IV).
    fn player_modules(&self) -> (usize, usize) {
        (1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn trains_and_infers() {
        let data = tiny_dataset(70);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 71);
        let mut rng = dar_tensor::rng(72);
        let mut model = A2r::new(&cfg, &emb, max_len(&data), &mut rng);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..5 {
            for batch in BatchIter::shuffled(&data.train, 32, &mut rng) {
                last = model.train_step(&batch, &mut rng);
                first.get_or_insert(last);
            }
        }
        assert!(last < first.unwrap(), "{first:?} -> {last}");
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let inf = model.infer(&batch);
        assert!(inf.logits.is_some() && inf.full_logits.is_some());
    }

    #[test]
    fn has_three_player_modules_worth_of_params() {
        let data = tiny_dataset(73);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 74);
        let mut rng = dar_tensor::rng(75);
        let a2r = A2r::new(&cfg, &emb, 32, &mut rng);
        let rnp = crate::models::Rnp::new(&cfg, &emb, 32, &mut rng);
        // Table IV: A2R is 3× a single player, RNP is 2×.
        let single = rnp.num_params() / 2;
        assert_eq!(a2r.num_params(), 3 * single);
        assert_eq!(a2r.player_modules(), (1, 2));
    }
}
