//! The rationalization models: the vanilla RNP game, the paper's DAR, and
//! the published baselines (A2R, DMR, Inter_RAT, CAR, 3PLAYER, VIB).

mod a2r;
mod car;
mod dar;
mod dmr;
mod inter_rat;
mod rnp;
mod three_player;
mod vib;

pub use a2r::A2r;
pub use car::{Car, ClassConditionalGenerator};
pub use dar::Dar;
pub use dmr::Dmr;
pub use inter_rat::InterRat;
pub use rnp::Rnp;
pub use three_player::ThreePlayer;
pub use vib::Vib;

use dar_data::Batch;
use dar_tensor::optim::AdamState;
use dar_tensor::{DarError, DarResult, Rng, Tensor};

/// Deterministic inference output of a model on one batch.
pub struct Inference {
    /// Binary rationale masks, one padded row per review.
    pub masks: Vec<Vec<f32>>,
    /// Prediction logits from the rationale input (`None` for
    /// label-conditioned selectors like CAR/DMR).
    pub logits: Option<Tensor>,
    /// Prediction logits of the same predictor on the full input — the
    /// alignment probe.
    pub full_logits: Option<Tensor>,
}

/// A trainable rationalization model.
pub trait RationaleModel {
    /// Display name (matches the paper's method names).
    fn name(&self) -> &'static str;

    /// Trainable parameters (frozen discriminators are excluded).
    fn params(&self) -> Vec<Tensor>;

    /// One optimization step on a batch; returns the scalar loss.
    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32;

    /// One optimization step with the batch split into `shards` fixed
    /// contiguous row-ranges, each forwarded/backwarded separately and the
    /// gradients accumulated in ascending shard order (DESIGN.md §9).
    ///
    /// Shard boundaries depend only on the batch size and `shards` — never
    /// on the thread budget — so for a given shard count the result is
    /// bit-identical on any `DAR_THREADS`. The default delegates to
    /// [`Self::train_step`]; models whose loss is a per-example mean
    /// override this via the crate-private `accumulate_sharded` helper.
    fn train_step_sharded(&mut self, batch: &Batch, rng: &mut Rng, shards: usize) -> f32 {
        let _ = shards;
        self.train_step(batch, rng)
    }

    /// Deterministic inference (argmax masks, no Gumbel noise).
    fn infer(&self, batch: &Batch) -> Inference;

    /// Full-text prediction logits `[b, classes]` that bypass the
    /// generator entirely, or `None` for models without a full-input
    /// predictor path (label-conditioned selectors like CAR).
    ///
    /// This is the serving runtime's degraded mode: when the generator is
    /// panicking or its rationales have collapsed, the service can keep
    /// answering predictions from the full input without touching the
    /// failing player.
    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        let _ = batch;
        None
    }

    /// (generator count, predictor count) as reported in Table IV.
    fn player_modules(&self) -> (usize, usize) {
        (1, 1)
    }

    /// Snapshot trainable parameter values (early stopping).
    fn snapshot(&self) -> Vec<Vec<f32>> {
        self.params().iter().map(|p| p.to_vec()).collect()
    }

    /// Restore a snapshot taken from the same model.
    fn restore(&mut self, snap: &[Vec<f32>]) {
        let params = self.params();
        assert_eq!(params.len(), snap.len(), "snapshot shape mismatch");
        for (p, s) in params.iter().zip(snap) {
            p.set_values(s.clone());
        }
    }

    /// Total trainable scalar parameters.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Export every optimizer's durable state for checkpointing, in a
    /// model-defined canonical order. The default (no optimizers) suits
    /// inference-only wrappers; trainable models override this together
    /// with [`Self::restore_optim`] so a resumed run replays the exact
    /// Adam moments of the interrupted one.
    fn optim_states(&self) -> Vec<AdamState> {
        Vec::new()
    }

    /// Restore optimizer state exported by [`Self::optim_states`] on an
    /// identically-constructed model.
    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        if states.is_empty() {
            Ok(())
        } else {
            Err(DarError::InvalidData(format!(
                "{} optimizer states for a model without optimizers",
                states.len()
            )))
        }
    }
}

/// Guard for the fixed-arity optimizer-state handshake in
/// [`RationaleModel::restore_optim`] implementations.
/// Accumulate gradients over fixed contiguous row-shards of `batch`.
///
/// Each shard's scalar loss is scaled by `|shard| / n` before `backward`,
/// so for per-example-mean objectives the accumulated gradient equals the
/// full-batch gradient up to float association. Shards run serially in
/// ascending index order; parallelism lives inside the tensor ops, which
/// are bit-identical for any thread budget. The caller zeroes grads first
/// and clips/steps afterwards. Returns the summed (weighted) loss.
pub(crate) fn accumulate_sharded(
    batch: &Batch,
    shards: usize,
    mut shard_loss: impl FnMut(&Batch) -> Tensor,
) -> f32 {
    let n = batch.len();
    let k = shards.clamp(1, n.max(1));
    let mut total = 0.0f32;
    for s in 0..k {
        let r = dar_par::shard_range(n, k, s);
        if r.is_empty() {
            continue;
        }
        let w = r.len() as f32 / n as f32;
        let sub = batch.rows(r);
        let loss = shard_loss(&sub).scale(w);
        total += loss.item();
        loss.backward();
    }
    total
}

pub(crate) fn expect_states<'a, const N: usize>(
    model: &str,
    states: &'a [AdamState],
) -> DarResult<&'a [AdamState; N]> {
    states.try_into().map_err(|_| {
        DarError::InvalidData(format!(
            "{model} expects {N} optimizer states, checkpoint has {}",
            states.len()
        ))
    })
}

/// Convert a mask tensor `[b, l]` into per-review rows.
pub(crate) fn mask_rows(z: &Tensor, batch: &Batch) -> Vec<Vec<f32>> {
    let l = batch.seq_len();
    z.to_vec().chunks(l).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for model unit tests: a tiny separable dataset on
    //! which any sound model must learn quickly.

    use dar_data::synth::{Aspect, SynthConfig};
    use dar_data::{AspectDataset, SynBeer};

    use crate::config::RationaleConfig;
    use crate::embedder::SharedEmbedding;

    /// A small Beer-Aroma dataset (fast to train in tests).
    pub fn tiny_dataset(seed: u64) -> AspectDataset {
        let cfg = SynthConfig {
            n_train: 192,
            n_dev: 48,
            n_test: 48,
            ..SynthConfig::beer(Aspect::Aroma)
        };
        SynBeer::generate(&cfg, &mut dar_tensor::rng(seed))
    }

    /// Small-model config for tests.
    pub fn tiny_config() -> RationaleConfig {
        RationaleConfig {
            emb_dim: 24,
            hidden: 24,
            sparsity: 0.16,
            lr: 2e-3,
            ..Default::default()
        }
    }

    pub fn tiny_embedding(data: &AspectDataset, seed: u64) -> SharedEmbedding {
        SharedEmbedding::random(
            data.vocab.len(),
            tiny_config().emb_dim,
            &mut dar_tensor::rng(seed),
        )
    }

    /// Max sequence length across splits (encoder sizing).
    pub fn max_len(data: &AspectDataset) -> usize {
        data.train
            .iter()
            .chain(&data.dev)
            .chain(&data.test)
            .map(|r| r.len())
            .max()
            .unwrap_or(1)
    }
}
