//! CAR (Chang et al., 2019): class-wise adversarial rationalization. The
//! selector is conditioned on the class label (factual rationales for the
//! true class, counterfactual for the other); discriminator predictors are
//! trained to rate factual rationales as their class and counterfactual
//! ones as the opposite, while the selector plays the adversarial side.
//!
//! As in the paper's tables, CAR consumes the label during selection, so
//! it reports no rationale-input prediction accuracy (`Acc = N/A`).

use dar_data::Batch;
use dar_nn::gumbel::{gumbel_softmax_st, hard_softmax_st};
use dar_nn::loss::cross_entropy;
use dar_nn::{Linear, Module};
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Encoder;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// A generator whose selection head is class-conditioned: the head emits
/// `2 * classes` logits per token and the caller picks the pair belonging
/// to the conditioning class. Shared by CAR and DMR.
pub struct ClassConditionalGenerator {
    pub embedding: SharedEmbedding,
    pub encoder: Encoder,
    pub head: Linear,
    classes: usize,
    tau: f32,
}

impl ClassConditionalGenerator {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        let encoder = Encoder::new(cfg, embedding.vocab(), max_len, rng);
        let head = Linear::new(rng, cfg.enc_out_dim(), 2 * cfg.classes);
        ClassConditionalGenerator {
            embedding: embedding.clone(),
            encoder,
            head,
            classes: cfg.classes,
            tau: cfg.tau,
        }
    }

    /// Per-token selection logits for the given conditioning class of each
    /// row, `[b*l, 2]`.
    fn class_logits(&self, batch: &Batch, classes: &[usize]) -> Tensor {
        let x = self.embedding.lookup(&batch.ids);
        let h = self.encoder.forward(&x, &batch.mask);
        let s = h.shape().to_vec();
        let (b, l) = (s[0], s[1]);
        let all = self.head.forward(&h.reshape(&[b * l, s[2]])); // [b*l, 2c]
                                                                 // Select the class-pair columns per row with a one-hot bmm:
                                                                 // [b, l, 2c] @ [b, 2c, 2] -> [b, l, 2].
        let mut sel = vec![0.0f32; b * 2 * self.classes * 2];
        for (i, &c) in classes.iter().enumerate() {
            assert!(c < self.classes, "conditioning class out of range");
            let base = i * 2 * self.classes * 2;
            sel[base + (2 * c) * 2] = 1.0;
            sel[base + (2 * c + 1) * 2 + 1] = 1.0;
        }
        let sel = Tensor::new(sel, &[b, 2 * self.classes, 2]);
        all.reshape(&[b, l, 2 * self.classes])
            .bmm(&sel)
            .reshape(&[b * l, 2])
    }

    /// Binary mask conditioned on `classes` (one per row).
    pub fn sample_mask(&self, batch: &Batch, classes: &[usize], rng: Option<&mut Rng>) -> Tensor {
        let logits = self.class_logits(batch, classes);
        let sel = match rng {
            Some(r) => gumbel_softmax_st(&logits, self.tau, r),
            None => hard_softmax_st(&logits),
        };
        let (b, l) = (batch.len(), batch.seq_len());
        sel.narrow(1, 1, 1).reshape(&[b, l]).mul(&batch.mask)
    }
}

impl Module for ClassConditionalGenerator {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        p.extend(self.head.params());
        p
    }
}

/// The CAR game: class-conditional selector vs. a discriminator predictor.
pub struct Car {
    pub cfg: RationaleConfig,
    pub gen: ClassConditionalGenerator,
    /// Discriminator judging rationales (factual → its class,
    /// counterfactual → should fool it).
    pub disc: Predictor,
    opt_gen: Adam,
    opt_disc: Adam,
    clip: f32,
}

impl Car {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        Car {
            cfg: *cfg,
            gen: ClassConditionalGenerator::new(cfg, embedding, max_len, rng),
            disc: Predictor::new(cfg, embedding, max_len, rng),
            opt_gen: Adam::with_lr(cfg.lr),
            opt_disc: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }
}

impl RationaleModel for Car {
    fn name(&self) -> &'static str {
        "CAR"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.disc.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let flipped: Vec<usize> = batch.labels.iter().map(|&y| 1 - y).collect();

        // Phase 1: discriminator learns to classify factual rationales as
        // their class and to resist counterfactual ones (detached masks).
        let z_fact = self
            .gen
            .sample_mask(batch, &batch.labels, Some(rng))
            .detach();
        let z_cf = self.gen.sample_mask(batch, &flipped, Some(rng)).detach();
        let d_params = self.disc.params();
        zero_grads(&d_params);
        let d_loss = cross_entropy(&self.disc.forward_masked(batch, &z_fact), &batch.labels).add(
            &cross_entropy(&self.disc.forward_masked(batch, &z_cf), &batch.labels),
        );
        d_loss.backward();
        clip_grad_norm(&d_params, self.clip);
        self.opt_disc.step(&d_params);

        // Phase 2: the selector makes factual rationales classifiable and
        // counterfactual ones convincing for the *wrong* class
        // (adversarial), under the usual compactness constraints.
        let g_params = self.gen.params();
        zero_grads(&g_params);
        let z_fact = self.gen.sample_mask(batch, &batch.labels, Some(rng));
        let z_cf = self.gen.sample_mask(batch, &flipped, Some(rng));
        let g_loss = cross_entropy(&self.disc.forward_masked(batch, &z_fact), &batch.labels)
            .add(
                &cross_entropy(&self.disc.forward_masked(batch, &z_cf), &flipped)
                    .scale(self.cfg.aux_weight),
            )
            .add(&omega(&z_fact, batch, &self.cfg))
            .add(&omega(&z_cf, batch, &self.cfg));
        g_loss.backward();
        self.disc.zero_grads();
        clip_grad_norm(&g_params, self.clip);
        self.opt_gen.step(&g_params);

        d_loss.item() + g_loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![
            self.opt_gen.export_state(&self.gen.params()),
            self.opt_disc.export_state(&self.disc.params()),
        ]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [g, d] = super::expect_states::<2>(self.name(), states)?;
        let g_params = self.gen.params();
        self.opt_gen.import_state(&g_params, g)?;
        let d_params = self.disc.params();
        self.opt_disc.import_state(&d_params, d)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        // Factual rationale for the gold label; no rationale-input
        // accuracy, as in the paper's tables.
        let z = self.gen.sample_mask(batch, &batch.labels, None);
        Inference {
            masks: mask_rows(&z, batch),
            logits: None,
            full_logits: None,
        }
    }

    /// 1 generator + 2 predictors' worth of modules (Table IV counts the
    /// class-wise discriminator pair).
    fn player_modules(&self) -> (usize, usize) {
        (1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn class_conditional_masks_differ_by_class() {
        let data = tiny_dataset(80);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 81);
        let mut rng = dar_tensor::rng(82);
        let gen = ClassConditionalGenerator::new(&cfg, &emb, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let z0 = gen.sample_mask(&batch, &vec![0; 8], None).to_vec();
        let z1 = gen.sample_mask(&batch, &vec![1; 8], None).to_vec();
        // Untrained heads are random, so the two class-pairs almost surely
        // select differently somewhere.
        assert_ne!(z0, z1, "class conditioning had no effect");
    }

    #[test]
    fn trains_and_infers_without_acc() {
        let data = tiny_dataset(83);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 84);
        let mut rng = dar_tensor::rng(85);
        let mut model = Car::new(&cfg, &emb, max_len(&data), &mut rng);
        for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(3) {
            let loss = model.train_step(&batch, &mut rng);
            assert!(loss.is_finite());
        }
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let inf = model.infer(&batch);
        assert!(inf.logits.is_none(), "CAR must not report Acc");
        assert!(inf.masks.iter().flatten().all(|&v| v == 0.0 || v == 1.0));
    }
}
