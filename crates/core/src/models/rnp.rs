//! RNP (Lei et al., 2016): the vanilla generator–predictor cooperative
//! game of Eq. (2) with the regularizer of Eq. (3).

use dar_data::Batch;
use dar_nn::loss::cross_entropy;
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// The vanilla rationalization game.
pub struct Rnp {
    pub cfg: RationaleConfig,
    pub gen: Generator,
    pub pred: Predictor,
    opt: Adam,
    clip: f32,
}

impl Rnp {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        Rnp {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    /// Build with an externally pretrained predictor (the skewed-predictor
    /// setting of Table VII initializes from first-sentence pretraining).
    pub fn with_predictor(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        pred: Predictor,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        Rnp {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred,
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    /// Replace the generator (skewed-generator setting of Table VIII).
    pub fn set_generator(&mut self, gen: Generator) {
        self.gen = gen;
    }

    /// The training loss on one batch (exposed for ablations).
    pub fn loss(&self, batch: &Batch, rng: &mut Rng) -> Tensor {
        let z = self.gen.sample_mask(batch, Some(rng));
        let logits = self.pred.forward_masked(batch, &z);
        cross_entropy(&logits, &batch.labels).add(&omega(&z, batch, &self.cfg))
    }
}

impl RationaleModel for Rnp {
    fn name(&self) -> &'static str {
        "RNP"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let loss = self.loss(batch, rng);
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn train_step_sharded(&mut self, batch: &Batch, rng: &mut Rng, shards: usize) -> f32 {
        if shards <= 1 {
            return self.train_step(batch, rng);
        }
        let params = self.params();
        zero_grads(&params);
        let total = super::accumulate_sharded(batch, shards, |sub| self.loss(sub, rng));
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        total
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = super::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }

    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.pred.forward_full(batch))
    }

    fn player_modules(&self) -> (usize, usize) {
        (1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn train_step_decreases_loss() {
        let data = tiny_dataset(0);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 1);
        let mut rng = dar_tensor::rng(2);
        let ml = max_len(&data);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..6 {
            for batch in BatchIter::shuffled(&data.train, 32, &mut rng) {
                last = model.train_step(&batch, &mut rng);
                first.get_or_insert(last);
            }
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {first:?} -> {last}"
        );
    }

    #[test]
    fn sharded_step_matches_full_batch_closely() {
        // Two identical models, same seeds: one full-batch step vs one
        // 2-shard accumulated step. The loss is a per-example mean and the
        // Gumbel noise is drawn row-major, so the sharded gradient equals
        // the full-batch one up to float association — parameters after
        // one Adam step must agree tightly (not bitwise).
        let data = tiny_dataset(20);
        let cfg = tiny_config();
        let emb_a = tiny_embedding(&data, 21);
        let emb_b = tiny_embedding(&data, 21);
        let mut rng_a = dar_tensor::rng(22);
        let mut rng_b = dar_tensor::rng(22);
        let ml = max_len(&data);
        let mut full = Rnp::new(&cfg, &emb_a, ml, &mut rng_a);
        let mut sharded = Rnp::new(&cfg, &emb_b, ml, &mut rng_b);
        let batch = BatchIter::sequential(&data.train, 32).next().unwrap();
        let loss_full = full.train_step_sharded(&batch, &mut rng_a, 1);
        let loss_sharded = sharded.train_step_sharded(&batch, &mut rng_b, 2);
        assert!(
            (loss_full - loss_sharded).abs() < 1e-3,
            "losses diverged: {loss_full} vs {loss_sharded}"
        );
        for (p, q) in full.params().iter().zip(sharded.params()) {
            for (a, b) in p.to_vec().iter().zip(q.to_vec()) {
                assert!((a - b).abs() < 1e-3, "params diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn infer_shapes_and_binary_masks() {
        let data = tiny_dataset(3);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 4);
        let mut rng = dar_tensor::rng(5);
        let model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let inf = model.infer(&batch);
        assert_eq!(inf.masks.len(), 8);
        assert!(inf.masks.iter().flatten().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(inf.logits.unwrap().shape(), &[8, 2]);
        assert_eq!(inf.full_logits.unwrap().shape(), &[8, 2]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let data = tiny_dataset(6);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 7);
        let mut rng = dar_tensor::rng(8);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let snap = model.snapshot();
        let batch = BatchIter::sequential(&data.train, 16).next().unwrap();
        model.train_step(&batch, &mut rng);
        let changed = model
            .params()
            .iter()
            .zip(&snap)
            .any(|(p, s)| p.to_vec() != *s);
        assert!(changed, "training changed nothing");
        model.restore(&snap);
        for (p, s) in model.params().iter().zip(&snap) {
            assert_eq!(&p.to_vec(), s);
        }
    }

    #[test]
    fn player_count_matches_table_iv() {
        let data = tiny_dataset(9);
        let mut rng = dar_tensor::rng(10);
        let model = Rnp::new(&tiny_config(), &tiny_embedding(&data, 11), 64, &mut rng);
        assert_eq!(model.player_modules(), (1, 1));
    }
}
