//! VIB (Paranjape et al., 2020), simplified: an information-bottleneck
//! sparsity objective replaces Eq. (3)'s hard constraint. Each token's
//! selection probability is regularized toward a Bernoulli prior with rate
//! `α` via a KL term; masks are still sampled straight-through. Used as a
//! baseline row of the Table VI BERT-encoder experiment.

use dar_data::Batch;
use dar_nn::loss::cross_entropy;
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;

/// The VIB-style bottleneck model.
pub struct Vib {
    pub cfg: RationaleConfig,
    pub gen: Generator,
    pub pred: Predictor,
    opt: Adam,
    clip: f32,
}

impl Vib {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        Vib {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    /// Mean KL( Bern(p_t) ‖ Bern(α) ) over real tokens.
    fn bottleneck_kl(&self, batch: &Batch) -> Tensor {
        let p = self.gen.soft_probs(batch).clamp(1e-4, 1.0 - 1e-4);
        let alpha = self.cfg.sparsity;
        let one_minus_p = p.neg().add_scalar(1.0);
        let kl = p
            .mul(&p.scale(1.0 / alpha).ln())
            .add(&one_minus_p.mul(&one_minus_p.scale(1.0 / (1.0 - alpha)).ln()));
        // Average over real tokens only.
        let total = kl.mul(&batch.mask).sum();
        let count: f32 = batch.lengths.iter().map(|&l| l as f32).sum();
        total.scale(1.0 / count.max(1.0))
    }
}

impl RationaleModel for Vib {
    fn name(&self) -> &'static str {
        "VIB"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let z = self.gen.sample_mask(batch, Some(rng));
        let logits = self.pred.forward_masked(batch, &z);
        let loss = cross_entropy(&logits, &batch.labels)
            .add(&self.bottleneck_kl(batch).scale(self.cfg.lambda1));
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = super::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }

    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.pred.forward_full(batch))
    }

    fn player_modules(&self) -> (usize, usize) {
        (1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn kl_zero_when_probs_match_prior() {
        let data = tiny_dataset(120);
        let cfg = RationaleConfig {
            sparsity: 0.5,
            ..tiny_config()
        };
        let emb = tiny_embedding(&data, 121);
        let mut rng = dar_tensor::rng(122);
        let model = Vib::new(&cfg, &emb, max_len(&data), &mut rng);
        // With symmetric prior 0.5 and a fresh head (logits near 0 →
        // p ≈ 0.5), the KL must be small.
        let batch = BatchIter::sequential(&data.train, 8).next().unwrap();
        let kl = model.bottleneck_kl(&batch).item();
        assert!(kl.abs() < 0.15, "KL at prior should be near zero, got {kl}");
    }

    #[test]
    fn trains_finite_and_infers() {
        let data = tiny_dataset(123);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 124);
        let mut rng = dar_tensor::rng(125);
        let mut model = Vib::new(&cfg, &emb, max_len(&data), &mut rng);
        for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(3) {
            assert!(model.train_step(&batch, &mut rng).is_finite());
        }
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        assert!(model.infer(&batch).logits.is_some());
    }
}
