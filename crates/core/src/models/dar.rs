//! DAR — Discriminatively Aligned Rationalization, the paper's method.
//!
//! On top of the RNP game, a `predictor^t` pretrained on the **full input**
//! (Eq. (4)) and *frozen* acts as a third-party discriminator: its
//! cross-entropy on the selected rationale (Eq. (5)) is added to the
//! objective (Eq. (6)). Because the discriminator never trains on
//! rationales, it cannot co-adapt to a deviated generator — gradients flow
//! *through* it into the generator, aligning `Z` with `X` (Theorem 1).

use dar_data::Batch;
use dar_nn::loss::cross_entropy;
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::generator::Generator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// The DAR model: RNP players plus a frozen full-text discriminator.
pub struct Dar {
    pub cfg: RationaleConfig,
    pub gen: Generator,
    pub pred: Predictor,
    /// `predictor^t`: pretrained on full text, never updated here.
    pub disc: Predictor,
    opt: Adam,
    clip: f32,
}

impl Dar {
    /// `disc` must come from [`crate::pretrain::full_text_predictor`]
    /// (Eq. (4)); it is held frozen.
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        disc: Predictor,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        // Freeze the discriminator: gradients still flow through it to the
        // generator, but its own weights get no gradient buffers at all.
        for p in disc.params() {
            p.freeze();
        }
        Dar {
            cfg: *cfg,
            gen: Generator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            disc,
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    /// Replace the generator (skewed-generator setting of Table VIII).
    pub fn set_generator(&mut self, gen: Generator) {
        self.gen = gen;
    }

    /// Eq. (6): `H_c(Y, Ŷ|Z) + H_c(Y, Ŷ^t|Z) + Ω(M)`.
    pub fn loss(&self, batch: &Batch, rng: &mut Rng) -> Tensor {
        let z = self.gen.sample_mask(batch, Some(rng));
        let logits = self.pred.forward_masked(batch, &z);
        let disc_logits = self.disc.forward_masked(batch, &z);
        cross_entropy(&logits, &batch.labels)
            .add(&cross_entropy(&disc_logits, &batch.labels).scale(self.cfg.aux_weight))
            .add(&omega(&z, batch, &self.cfg))
    }
}

impl RationaleModel for Dar {
    fn name(&self) -> &'static str {
        "DAR"
    }

    /// Trainable parameters only — the discriminator is frozen by
    /// exclusion (its accumulated gradients are discarded every step).
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let loss = self.loss(batch, rng);
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn train_step_sharded(&mut self, batch: &Batch, rng: &mut Rng, shards: usize) -> f32 {
        if shards <= 1 {
            return self.train_step(batch, rng);
        }
        let params = self.params();
        zero_grads(&params);
        let total = super::accumulate_sharded(batch, shards, |sub| self.loss(sub, rng));
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        total
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = super::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, None);
        let logits = self.pred.forward_masked(batch, &z);
        let full = self.pred.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: Some(logits),
            full_logits: Some(full),
        }
    }

    /// The frozen discriminator *is* the model's full-text expert
    /// (Eq. (4)), so degraded predictor-only serving reads it directly.
    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.disc.forward_full(batch))
    }

    /// 1 generator + 2 predictors (Table IV).
    fn player_modules(&self) -> (usize, usize) {
        (1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use crate::pretrain;
    use dar_data::BatchIter;

    fn build(seed: u64) -> (Dar, dar_data::AspectDataset) {
        let data = tiny_dataset(seed);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, seed + 1);
        let mut rng = dar_tensor::rng(seed + 2);
        let ml = max_len(&data);
        let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 3, &mut rng);
        (Dar::new(&cfg, &emb, disc, ml, &mut rng), data)
    }

    #[test]
    fn discriminator_is_frozen_by_training() {
        let (mut model, data) = build(20);
        let before: Vec<Vec<f32>> = model.disc.params().iter().map(|p| p.to_vec()).collect();
        let mut rng = dar_tensor::rng(1);
        for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(3) {
            model.train_step(&batch, &mut rng);
        }
        for (p, b) in model.disc.params().iter().zip(&before) {
            assert_eq!(&p.to_vec(), b, "frozen discriminator drifted");
        }
    }

    #[test]
    fn generator_receives_gradient_through_discriminator() {
        // Even with the trainable predictor's CE removed, the generator
        // must get a training signal via the frozen disc (Eq. (5)).
        let (model, data) = build(30);
        let mut rng = dar_tensor::rng(2);
        let batch = BatchIter::sequential(&data.train, 16).next().unwrap();
        let z = model.gen.sample_mask(&batch, Some(&mut rng));
        let disc_logits = model.disc.forward_masked(&batch, &z);
        zero_grads(&model.gen.params());
        dar_nn::loss::cross_entropy(&disc_logits, &batch.labels).backward();
        let touched = model
            .gen
            .params()
            .iter()
            .filter(|p| p.grad_vec().is_some())
            .count();
        assert!(
            touched > 0,
            "no gradient reached the generator through predictor^t"
        );
    }

    #[test]
    fn loss_decreases() {
        let (mut model, data) = build(40);
        let mut rng = dar_tensor::rng(3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..6 {
            for batch in BatchIter::shuffled(&data.train, 32, &mut rng) {
                last = model.train_step(&batch, &mut rng);
                first.get_or_insert(last);
            }
        }
        assert!(last < first.unwrap());
    }

    #[test]
    fn player_count_matches_table_iv() {
        let (model, _) = build(50);
        assert_eq!(model.player_modules(), (1, 2));
    }
}
