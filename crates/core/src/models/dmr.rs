//! DMR (Huang et al., 2021): distribution matching. A teacher predictor is
//! trained on the **full text** while the rationale predictor's output
//! distribution is matched to the teacher's (KL). Unlike DAR, the teacher
//! is co-trained from scratch, so a deviated game can drag it along — the
//! contrast the paper draws in §II.
//!
//! Following the paper's Metrics note, DMR's selector is label-conditioned
//! (class-wise matching), so no rationale-input accuracy is reported.

use dar_data::Batch;
use dar_nn::loss::{cross_entropy, kl_div_logits};
use dar_nn::Module;
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, AdamState, Optimizer};
use dar_tensor::{DarResult, Rng, Tensor};

use crate::config::RationaleConfig;
use crate::embedder::SharedEmbedding;
use crate::models::car::ClassConditionalGenerator;
use crate::models::{mask_rows, Inference, RationaleModel};
use crate::predictor::Predictor;
use crate::regularizer::omega;

/// The DMR model: class-conditional generator, rationale predictor, and a
/// co-trained full-text teacher.
pub struct Dmr {
    pub cfg: RationaleConfig,
    pub gen: ClassConditionalGenerator,
    pub pred: Predictor,
    pub teacher: Predictor,
    opt: Adam,
    clip: f32,
}

impl Dmr {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        Dmr {
            cfg: *cfg,
            gen: ClassConditionalGenerator::new(cfg, embedding, max_len, rng),
            pred: Predictor::new(cfg, embedding, max_len, rng),
            teacher: Predictor::new(cfg, embedding, max_len, rng),
            opt: Adam::with_lr(cfg.lr),
            clip: 5.0,
        }
    }

    fn loss(&self, batch: &Batch, rng: &mut Rng) -> Tensor {
        let z = self.gen.sample_mask(batch, &batch.labels, Some(rng));
        let teacher_logits = self.teacher.forward_full(batch);
        let pred_logits = self.pred.forward_masked(batch, &z);
        cross_entropy(&teacher_logits, &batch.labels)
            .add(&cross_entropy(&pred_logits, &batch.labels))
            .add(&kl_div_logits(&teacher_logits, &pred_logits).scale(self.cfg.aux_weight))
            .add(&omega(&z, batch, &self.cfg))
    }
}

impl RationaleModel for Dmr {
    fn name(&self) -> &'static str {
        "DMR"
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.gen.params();
        p.extend(self.pred.params());
        p.extend(self.teacher.params());
        p
    }

    fn train_step(&mut self, batch: &Batch, rng: &mut Rng) -> f32 {
        let params = self.params();
        zero_grads(&params);
        let loss = self.loss(batch, rng);
        loss.backward();
        clip_grad_norm(&params, self.clip);
        self.opt.step(&params);
        loss.item()
    }

    fn optim_states(&self) -> Vec<AdamState> {
        vec![self.opt.export_state(&self.params())]
    }

    fn restore_optim(&mut self, states: &[AdamState]) -> DarResult<()> {
        let [s] = super::expect_states::<1>(self.name(), states)?;
        let params = self.params();
        self.opt.import_state(&params, s)
    }

    fn infer(&self, batch: &Batch) -> Inference {
        let z = self.gen.sample_mask(batch, &batch.labels, None);
        // Label-conditioned selection → no honest rationale-input Acc;
        // the teacher's full-text probe is still reportable.
        let full = self.teacher.forward_full(batch);
        Inference {
            masks: mask_rows(&z, batch),
            logits: None,
            full_logits: Some(full),
        }
    }

    fn predict_full_text(&self, batch: &Batch) -> Option<Tensor> {
        Some(self.teacher.forward_full(batch))
    }

    /// Paper Table IV counts DMR as 1 generator + 3 predictors (4×
    /// parameters); this re-implementation folds the class-wise pair into
    /// one conditioned head, so it carries 1 gen + 2 preds.
    fn player_modules(&self) -> (usize, usize) {
        (1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use dar_data::BatchIter;

    #[test]
    fn trains_and_reports_no_acc() {
        let data = tiny_dataset(90);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 91);
        let mut rng = dar_tensor::rng(92);
        let mut model = Dmr::new(&cfg, &emb, max_len(&data), &mut rng);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..4 {
            for batch in BatchIter::shuffled(&data.train, 32, &mut rng) {
                last = model.train_step(&batch, &mut rng);
                first.get_or_insert(last);
            }
        }
        assert!(last < first.unwrap(), "{first:?} -> {last}");
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let inf = model.infer(&batch);
        assert!(inf.logits.is_none());
        assert!(inf.full_logits.is_some());
    }

    #[test]
    fn teacher_is_trainable_not_frozen() {
        // The key architectural difference from DAR: DMR's full-text
        // module co-trains with the game.
        let data = tiny_dataset(93);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 94);
        let mut rng = dar_tensor::rng(95);
        let mut model = Dmr::new(&cfg, &emb, max_len(&data), &mut rng);
        let before: Vec<Vec<f32>> = model.teacher.params().iter().map(|p| p.to_vec()).collect();
        let batch = BatchIter::sequential(&data.train, 16).next().unwrap();
        model.train_step(&batch, &mut rng);
        let changed = model
            .teacher
            .params()
            .iter()
            .zip(&before)
            .any(|(p, b)| p.to_vec() != *b);
        assert!(changed, "DMR teacher did not train");
    }
}
