//! The shared, frozen embedding table used by every player.
//!
//! The paper follows DMR/A2R: 100-d GloVe vectors, shared by generator and
//! predictors. Here the vectors come from the GloVe-style pretrainer of
//! `dar-text`, trained on the synthetic corpus itself (DESIGN.md §4).

use dar_data::AspectDataset;
use dar_nn::Embedding;
use dar_tensor::{Rng, Tensor};
use dar_text::{GloveConfig, GloveTrainer};

/// A cheaply clonable, frozen embedding lookup (clones share the table).
pub struct SharedEmbedding {
    table: Tensor,
    dim: usize,
}

impl Clone for SharedEmbedding {
    fn clone(&self) -> Self {
        SharedEmbedding {
            table: self.table.clone(),
            dim: self.dim,
        }
    }
}

impl SharedEmbedding {
    /// Pretrain GloVe-style vectors on the dataset's own corpus.
    pub fn pretrained(data: &AspectDataset, dim: usize, rng: &mut Rng) -> Self {
        let cfg = GloveConfig {
            dim,
            epochs: 8,
            window: 4,
            ..Default::default()
        };
        let table = GloveTrainer::new(cfg).train(&data.corpus(), data.vocab.len(), rng);
        Self::from_table(table, data.vocab.len(), dim)
    }

    /// Random (untrained) embeddings — faster for unit tests.
    pub fn random(vocab: usize, dim: usize, rng: &mut Rng) -> Self {
        Self::from_table(
            dar_tensor::init::normal(rng, vocab * dim, 0.0, 0.3),
            vocab,
            dim,
        )
    }

    /// Wrap an existing `[vocab * dim]` table.
    pub fn from_table(table: Vec<f32>, vocab: usize, dim: usize) -> Self {
        let emb = Embedding::from_pretrained(table, vocab, dim, false);
        SharedEmbedding {
            table: emb.table.clone(),
            dim,
        }
    }

    /// Look up a padded batch into `[b, l, dim]`.
    pub fn lookup(&self, ids: &[Vec<usize>]) -> Tensor {
        let b = ids.len();
        let l = ids[0].len();
        let flat: Vec<usize> = ids.iter().flatten().copied().collect();
        self.table.gather_rows(&flat).reshape(&[b, l, self.dim])
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn vocab(&self) -> usize {
        self.table.shape()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_shape_and_sharing() {
        let mut rng = dar_tensor::rng(0);
        let e = SharedEmbedding::random(10, 4, &mut rng);
        let out = e.lookup(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(out.shape(), &[2, 2, 4]);
        let e2 = e.clone();
        assert_eq!(e2.vocab(), 10);
        // Clones share storage: same tensor id.
        assert_eq!(e.table.id(), e2.table.id());
    }

    #[test]
    fn frozen_no_grad() {
        let mut rng = dar_tensor::rng(1);
        let e = SharedEmbedding::random(5, 3, &mut rng);
        let y = e.lookup(&[vec![0, 1]]);
        assert!(!y.requires_grad());
    }
}
