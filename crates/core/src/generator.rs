//! The generator player: encodes the full input and emits a binary
//! token-selection mask `M` via Gumbel-softmax straight-through (Eq. (1)).

use dar_data::Batch;
use dar_nn::gumbel::{gumbel_softmax_st, hard_softmax_st};
use dar_nn::{BiGru, Linear, Module, TransformerConfig, TransformerEncoder};
use dar_tensor::{Rng, Tensor};

use crate::config::{EncoderKind, RationaleConfig};
use crate::embedder::SharedEmbedding;

/// Sequence encoder shared by the players (GRU main setting, transformer
/// for the Table VI experiment).
pub enum Encoder {
    BiGru(BiGru),
    Transformer(Box<TransformerEncoder>),
}

impl Encoder {
    pub fn new(cfg: &RationaleConfig, vocab: usize, max_len: usize, rng: &mut Rng) -> Self {
        match cfg.encoder {
            EncoderKind::BiGru => Encoder::BiGru(BiGru::new(rng, cfg.emb_dim, cfg.hidden)),
            EncoderKind::Transformer => Encoder::Transformer(Box::new(TransformerEncoder::new(
                rng,
                TransformerConfig {
                    vocab,
                    dim: cfg.emb_dim,
                    heads: 4,
                    layers: 2,
                    ff_dim: 2 * cfg.emb_dim,
                    max_len: max_len.max(256),
                    mask_token: dar_text::vocab::MASK,
                },
            ))),
        }
    }

    /// Encode embedded tokens `[b, l, e]` into features `[b, l, d]`.
    pub fn forward(&self, x: &Tensor, mask: &Tensor) -> Tensor {
        match self {
            Encoder::BiGru(g) => g.forward(x, Some(mask)),
            Encoder::Transformer(t) => t.forward_embedded(x, mask),
        }
    }
}

impl Module for Encoder {
    fn params(&self) -> Vec<Tensor> {
        match self {
            Encoder::BiGru(g) => g.params(),
            Encoder::Transformer(t) => t.params(),
        }
    }
}

/// The generator `f_G`: encoder + per-token 2-way selection head.
pub struct Generator {
    pub embedding: SharedEmbedding,
    pub encoder: Encoder,
    pub head: Linear,
    tau: f32,
}

impl Generator {
    pub fn new(
        cfg: &RationaleConfig,
        embedding: &SharedEmbedding,
        max_len: usize,
        rng: &mut Rng,
    ) -> Self {
        let encoder = Encoder::new(cfg, embedding.vocab(), max_len, rng);
        let head = Linear::new(rng, cfg.enc_out_dim(), 2);
        Generator {
            embedding: embedding.clone(),
            encoder,
            head,
            tau: cfg.tau,
        }
    }

    /// Per-token selection logits `[b*l, 2]` for a batch.
    pub fn selection_logits(&self, batch: &Batch) -> Tensor {
        let x = self.embedding.lookup(&batch.ids);
        let h = self.encoder.forward(&x, &batch.mask);
        let s = h.shape().to_vec();
        self.head.forward(&h.reshape(&[s[0] * s[1], s[2]]))
    }

    /// Sample a binary rationale mask `[b, l]` (1 = selected).
    ///
    /// Training uses Gumbel noise; evaluation is the deterministic argmax.
    /// Padding positions are forced to 0 either way.
    pub fn sample_mask(&self, batch: &Batch, rng: Option<&mut Rng>) -> Tensor {
        let logits = self.selection_logits(batch);
        let sel = match rng {
            Some(r) => gumbel_softmax_st(&logits, self.tau, r),
            None => hard_softmax_st(&logits),
        };
        let b = batch.len();
        let l = batch.seq_len();
        // Column 1 is the "select" class.
        sel.narrow(1, 1, 1).reshape(&[b, l]).mul(&batch.mask)
    }

    /// Soft selection probabilities `[b, l]` (A2R's soft head, also useful
    /// for inspection).
    pub fn soft_probs(&self, batch: &Batch) -> Tensor {
        let logits = self.selection_logits(batch);
        let b = batch.len();
        let l = batch.seq_len();
        logits
            .softmax()
            .narrow(1, 1, 1)
            .reshape(&[b, l])
            .mul(&batch.mask)
    }
}

impl Module for Generator {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        p.extend(self.head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_data::Review;

    fn batch() -> Batch {
        let reviews: Vec<Review> = (0..3)
            .map(|i| Review {
                ids: vec![3 + i, 4, 5, 6][..=i + 1].to_vec(),
                label: i % 2,
                rationale: vec![false; i + 2],
                first_sentence_end: 1,
            })
            .collect();
        let refs: Vec<&Review> = reviews.iter().collect();
        Batch::from_reviews(&refs).expect("non-empty fixture")
    }

    fn generator() -> (Generator, Batch) {
        let mut rng = dar_tensor::rng(0);
        let emb = SharedEmbedding::random(16, 8, &mut rng);
        let cfg = RationaleConfig {
            emb_dim: 8,
            hidden: 6,
            ..Default::default()
        };
        (Generator::new(&cfg, &emb, 16, &mut rng), batch())
    }

    #[test]
    fn mask_is_binary_and_padding_free() {
        let (g, b) = generator();
        let mut rng = dar_tensor::rng(1);
        let m = g.sample_mask(&b, Some(&mut rng));
        assert_eq!(m.shape(), &[3, 4]);
        let mv = m.to_vec();
        let pad = b.mask.to_vec();
        for (i, &v) in mv.iter().enumerate() {
            assert!(v == 0.0 || v == 1.0, "non-binary mask value {v}");
            if pad[i] == 0.0 {
                assert_eq!(v, 0.0, "selected a padding token");
            }
        }
    }

    #[test]
    fn eval_mask_is_deterministic() {
        let (g, b) = generator();
        assert_eq!(
            g.sample_mask(&b, None).to_vec(),
            g.sample_mask(&b, None).to_vec()
        );
    }

    #[test]
    fn soft_probs_in_unit_interval() {
        let (g, b) = generator();
        for &p in g.soft_probs(&b).to_vec().iter() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gradients_reach_generator_params() {
        let (g, b) = generator();
        let mut rng = dar_tensor::rng(2);
        let m = g.sample_mask(&b, Some(&mut rng));
        m.sum().backward();
        let with_grad = g.params().iter().filter(|p| p.grad_vec().is_some()).count();
        assert!(with_grad > 0, "no generator parameter received grads");
    }

    #[test]
    fn transformer_encoder_variant_runs() {
        let mut rng = dar_tensor::rng(3);
        let emb = SharedEmbedding::random(16, 8, &mut rng);
        let cfg = RationaleConfig {
            emb_dim: 8,
            encoder: EncoderKind::Transformer,
            ..Default::default()
        };
        let g = Generator::new(&cfg, &emb, 16, &mut rng);
        let m = g.sample_mask(&batch(), None);
        assert_eq!(m.shape(), &[3, 4]);
    }
}
