//! The short-and-coherent rationale regularizer of Eq. (3):
//!
//! ```text
//! Ω(M) = λ1 | ‖M‖₁ / l − α |  +  λ2 Σ_t | m_t − m_{t−1} |
//! ```
//!
//! computed per example over real (unpadded) tokens and averaged over the
//! batch.

use dar_data::Batch;
use dar_tensor::Tensor;

use crate::config::RationaleConfig;

/// Sparsity term: mean over the batch of `| selected/len − α |`.
pub fn sparsity_loss(z: &Tensor, batch: &Batch, alpha: f32) -> Tensor {
    let lens = Tensor::new(
        batch.lengths.iter().map(|&l| l as f32).collect(),
        &[batch.len(), 1],
    );
    // z is already zero on padding, so the row sum counts real selections.
    let frac = z.sum_axis(1, true).div(&lens); // [b, 1]
    frac.add_scalar(-alpha).abs().mean()
}

/// Coherence term: mean over the batch of `Σ_t |m_t − m_{t−1}|`,
/// normalized by length so long reviews are not over-penalized.
pub fn coherence_loss(z: &Tensor, batch: &Batch) -> Tensor {
    let l = batch.seq_len();
    if l < 2 {
        return Tensor::scalar(0.0);
    }
    let cur = z.narrow(1, 1, l - 1);
    let prev = z.narrow(1, 0, l - 1);
    // Transitions involving padding are zero-minus-zero (mask already
    // zeroes padding), except the edge real->pad which counts once and is
    // a true "rationale ends" transition; keep it.
    let lens = Tensor::new(
        batch.lengths.iter().map(|&l| l as f32).collect(),
        &[batch.len(), 1],
    );
    cur.sub(&prev).abs().sum_axis(1, true).div(&lens).mean()
}

/// Full Ω(M).
pub fn omega(z: &Tensor, batch: &Batch, cfg: &RationaleConfig) -> Tensor {
    sparsity_loss(z, batch, cfg.sparsity)
        .scale(cfg.lambda1)
        .add(&coherence_loss(z, batch).scale(cfg.lambda2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_data::Review;

    fn batch(lens: &[usize]) -> Batch {
        let reviews: Vec<Review> = lens
            .iter()
            .map(|&n| Review {
                ids: vec![5; n],
                label: 0,
                rationale: vec![false; n],
                first_sentence_end: 1,
            })
            .collect();
        let refs: Vec<&Review> = reviews.iter().collect();
        Batch::from_reviews(&refs).expect("non-empty fixture")
    }

    #[test]
    fn sparsity_zero_at_target() {
        let b = batch(&[4]);
        let z = Tensor::new(vec![1.0, 1.0, 0.0, 0.0], &[1, 4]);
        let cfg = RationaleConfig {
            sparsity: 0.5,
            ..Default::default()
        };
        assert!(sparsity_loss(&z, &b, cfg.sparsity).item().abs() < 1e-6);
    }

    #[test]
    fn sparsity_penalizes_over_and_under() {
        let b = batch(&[4]);
        let all = Tensor::ones(&[1, 4]);
        let none = Tensor::zeros(&[1, 4]);
        let over = sparsity_loss(&all, &b, 0.25).item();
        let under = sparsity_loss(&none, &b, 0.25).item();
        assert!((over - 0.75).abs() < 1e-6);
        assert!((under - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sparsity_respects_true_lengths_not_padding() {
        // Two reviews of lengths 2 and 4; selecting 1 token in the short
        // one is 50% sparsity regardless of padding to length 4.
        let b = batch(&[2, 4]);
        let z = Tensor::new(vec![1., 0., 0., 0., 1., 1., 0., 0.], &[2, 4]);
        let loss = sparsity_loss(&z, &b, 0.5).item();
        assert!(loss.abs() < 1e-6, "padding distorted sparsity: {loss}");
    }

    #[test]
    fn coherence_counts_transitions() {
        let b = batch(&[4]);
        let blocky = Tensor::new(vec![1.0, 1.0, 0.0, 0.0], &[1, 4]);
        let scattered = Tensor::new(vec![1.0, 0.0, 1.0, 0.0], &[1, 4]);
        let cb = coherence_loss(&blocky, &b).item();
        let cs = coherence_loss(&scattered, &b).item();
        assert!(cs > cb, "scattered {cs} not above blocky {cb}");
    }

    #[test]
    fn coherence_zero_for_uniform_mask() {
        let b = batch(&[4]);
        assert!(coherence_loss(&Tensor::ones(&[1, 4]), &b).item().abs() < 1e-5);
        assert!(coherence_loss(&Tensor::zeros(&[1, 4]), &b).item().abs() < 1e-6);
    }

    #[test]
    fn omega_combines_with_weights() {
        let b = batch(&[4]);
        let z = Tensor::new(vec![1.0, 0.0, 1.0, 0.0], &[1, 4]);
        let cfg = RationaleConfig {
            sparsity: 0.5,
            lambda1: 2.0,
            lambda2: 3.0,
            ..Default::default()
        };
        let want = 2.0 * sparsity_loss(&z, &b, 0.5).item() + 3.0 * coherence_loss(&z, &b).item();
        assert!((omega(&z, &b, &cfg).item() - want).abs() < 1e-6);
    }

    #[test]
    fn omega_differentiable() {
        let b = batch(&[3]);
        let z = Tensor::param(vec![0.6, 0.4, 0.2], &[1, 3]);
        omega(&z, &b, &RationaleConfig::default()).backward();
        assert!(z.grad_vec().is_some());
    }

    #[test]
    fn single_token_review_has_zero_coherence() {
        let b = batch(&[1]);
        let z = Tensor::ones(&[1, 1]);
        assert_eq!(coherence_loss(&z, &b).item(), 0.0);
    }
}
