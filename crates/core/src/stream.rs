//! Streaming review feed + guarded background trainer for the online
//! loop (`dar-loop`).
//!
//! The feed generates an endless sequence of synthetic review chunks —
//! each chunk is a fresh `SynBeer::generate` draw under a per-round seed
//! derived from the feed seed, so the stream is reproducible and every
//! chunk shares the *same* vocabulary (the synthetic vocab is built from
//! the fixed domain lexicon, independent of the RNG), which keeps every
//! candidate checkpoint shape- and vocab-compatible with the serving
//! replicas. A chaos hook can poison the stream with malformed reviews;
//! the trainer filters them through the same typed admission check the
//! server uses ([`dar_data::Review::admissible`]).
//!
//! The trainer is *guarded* in the `GuardedTrainer` sense but scoped to
//! a round: parameters are snapshotted before each round, and a round
//! that produces a non-finite loss or non-finite parameters is rolled
//! back and reported as `Skipped` — a poisoned round can never become a
//! candidate checkpoint, and the serving side additionally re-validates
//! (CRC/shape) and canaries whatever it is offered. Trainer panics are
//! caught at the thread boundary and surfaced as a `TrainerDied`
//! message: the background loop dying must never take serving with it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use dar_data::{BatchIter, Review, SynBeer, SynthConfig};
use dar_obs::ObsEvent;
use dar_tensor::serial::{self, Checkpoint};
use dar_tensor::Rng;

use crate::fault::malformed_review;
use crate::models::RationaleModel;

/// Builds the trainer's model replica on the trainer thread (tensors are
/// not `Send`). Use the *same* closure as the serving `ModelFactory` so
/// candidate checkpoints match the serving architecture.
pub type StreamModelFactory = Arc<dyn Fn() -> Box<dyn RationaleModel> + Send + Sync>;

/// Knobs for [`ReviewFeed`].
#[derive(Debug, Clone, Copy)]
pub struct FeedConfig {
    /// Chunk shape: `n_train` is the chunk size (`n_dev`/`n_test` are
    /// forced to 0).
    pub synth: SynthConfig,
    /// Stream seed; round `r` draws from `seed ^ (r · φ64)`.
    pub seed: u64,
    /// Chaos hook: replace every k-th review with a malformed one
    /// (out-of-vocabulary ids), exercising feed admission.
    pub poison_every: Option<usize>,
}

/// One chunk of the stream.
#[derive(Debug, Clone)]
pub struct FeedChunk {
    pub round: u64,
    pub reviews: Vec<Review>,
    /// How many reviews the poison hook replaced.
    pub poisoned: usize,
}

impl FeedChunk {
    /// Typed admission, mirroring the serving door: returns the reviews
    /// a server would accept and the count it would bounce.
    pub fn admit(&self, vocab_size: usize, max_len: usize) -> (Vec<Review>, usize) {
        let mut clean = Vec::with_capacity(self.reviews.len());
        let mut rejected = 0usize;
        for r in &self.reviews {
            if r.admissible(vocab_size, max_len).is_ok() {
                clean.push(r.clone());
            } else {
                rejected += 1;
            }
        }
        (clean, rejected)
    }
}

/// Deterministic infinite stream of synthetic review chunks.
pub struct ReviewFeed {
    cfg: FeedConfig,
    next_round: u64,
}

impl ReviewFeed {
    pub fn new(cfg: FeedConfig) -> Self {
        ReviewFeed { cfg, next_round: 0 }
    }

    /// A feed positioned at `round` — after crash recovery the cursor
    /// resumes where the durable journal says completed rounds end, and
    /// because every chunk is drawn from a per-round seed, the resumed
    /// stream is byte-identical to an uninterrupted one.
    pub fn starting_at(cfg: FeedConfig, round: u64) -> Self {
        ReviewFeed {
            cfg,
            next_round: round,
        }
    }

    pub fn next_chunk(&mut self) -> FeedChunk {
        let round = self.next_round;
        self.next_round += 1;
        let seed = self.cfg.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let synth = SynthConfig {
            n_dev: 0,
            n_test: 0,
            ..self.cfg.synth
        };
        let data = SynBeer::generate(&synth, &mut dar_tensor::rng(seed));
        let vocab = data.vocab.len();
        let mut reviews = data.train;
        let mut poisoned = 0usize;
        if let Some(k) = self.cfg.poison_every {
            if k > 0 {
                let mut i = k - 1;
                while i < reviews.len() {
                    reviews[i] = malformed_review(vocab, seed ^ i as u64);
                    poisoned += 1;
                    i += k;
                }
            }
        }
        FeedChunk {
            round,
            reviews,
            poisoned,
        }
    }
}

/// Knobs for [`OnlineTrainer`].
#[derive(Debug, Clone)]
pub struct OnlineTrainerConfig {
    /// Candidate rounds to produce before `Finished`.
    pub rounds: usize,
    /// First round number to train (0 for a fresh loop). After crash
    /// recovery this is the durable journal's resume round, so completed
    /// rounds are never re-trained or re-offered.
    pub first_round: usize,
    /// Passes over each chunk.
    pub epochs_per_round: usize,
    pub batch_size: usize,
    /// Admission bounds, mirroring the serving config.
    pub vocab_size: usize,
    pub max_len: usize,
    /// Where candidate checkpoints land (`candidate_r<round>.ckpt`).
    pub candidate_dir: PathBuf,
    /// Trainer RNG seed (batch shuffles, Gumbel noise). Each round uses
    /// `seed ^ (round · φ64)`, so a resumed trainer draws the same
    /// per-round randomness an uninterrupted one would.
    pub seed: u64,
    /// Warm-start the model from this checkpoint before the first round
    /// (recovery: the last durable incumbent or candidate). A load
    /// failure is journaled and training continues from fresh init —
    /// a stale checkpoint must not wedge the loop.
    pub resume_from: Option<PathBuf>,
    /// Chaos hook: panic at the start of this round, mid-"epoch" from
    /// the loop's perspective. Leave `None` in production.
    pub panic_at_round: Option<usize>,
}

/// One message from the trainer to the promotion controller.
#[derive(Debug)]
pub enum CandidateMsg {
    /// A round produced a candidate checkpoint at `path`.
    Candidate {
        round: usize,
        path: PathBuf,
        /// Admitted reviews the round trained on.
        trained_on: usize,
        /// Reviews the feed admission bounced (poisoned data).
        rejected: usize,
    },
    /// The round produced no candidate (guard rollback, empty chunk,
    /// checkpoint I/O failure); `cause` is a stable snake_case-ish tag.
    Skipped { round: usize, cause: String },
    /// The trainer thread panicked; no further candidates will come.
    TrainerDied { msg: String },
    /// All configured rounds completed.
    Finished,
}

/// The guarded background trainer. Synchronous by design — drive it
/// directly for deterministic tests, or hand it to
/// [`spawn_online_trainer`] for the real train-while-serve topology.
pub struct OnlineTrainer {
    cfg: OnlineTrainerConfig,
    feed: ReviewFeed,
    model: Box<dyn RationaleModel>,
}

impl OnlineTrainer {
    pub fn new(
        cfg: OnlineTrainerConfig,
        factory: &dyn Fn() -> Box<dyn RationaleModel>,
        feed: ReviewFeed,
    ) -> Self {
        let model = factory();
        if let Some(path) = &cfg.resume_from {
            if let Err(e) = serial::load_into(path, &model.params()) {
                dar_obs::event(ObsEvent::Custom {
                    kind: "trainer_resume_failed".into(),
                    detail: format!("{}: {e}", path.display()),
                });
            }
        }
        OnlineTrainer { cfg, feed, model }
    }

    /// Round-scoped RNG: `seed ^ (round · φ64)`, the same derivation the
    /// feed uses. Making the randomness a pure function of (seed, round)
    /// — instead of one RNG threaded across rounds — is what lets a
    /// recovered trainer resume mid-stream bit-identically.
    fn round_rng(&self, round: usize) -> Rng {
        dar_tensor::rng(self.cfg.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Consume one chunk, train on it, and either write a candidate
    /// checkpoint or roll the round back.
    pub fn train_round(&mut self, round: usize) -> CandidateMsg {
        let chunk = self.feed.next_chunk();
        let (clean, rejected) = chunk.admit(self.cfg.vocab_size, self.cfg.max_len);
        dar_obs::add("loop.feed_reviews", chunk.reviews.len() as u64);
        dar_obs::add("loop.feed_rejected", rejected as u64);
        if clean.is_empty() {
            return CandidateMsg::Skipped {
                round,
                cause: "empty_chunk".into(),
            };
        }

        // Round-scoped guard: any divergence rolls back to here, and the
        // round yields no candidate.
        let snap = self.model.snapshot();
        if self.cfg.panic_at_round == Some(round) {
            panic!("online trainer chaos panic (round {round})");
        }
        let mut rng = self.round_rng(round);
        for _ in 0..self.cfg.epochs_per_round.max(1) {
            for batch in BatchIter::shuffled(&clean, self.cfg.batch_size, &mut rng) {
                let loss = self.model.train_step(&batch, &mut rng);
                if !loss.is_finite() {
                    self.model.restore(&snap);
                    dar_obs::event(ObsEvent::GuardTripped {
                        epoch: round as u64,
                        reason: "online: non-finite loss".into(),
                    });
                    return CandidateMsg::Skipped {
                        round,
                        cause: "non_finite_loss".into(),
                    };
                }
            }
        }
        let poisoned_params = self
            .model
            .params()
            .iter()
            .any(|p| p.to_vec().iter().any(|v| !v.is_finite()));
        if poisoned_params {
            self.model.restore(&snap);
            dar_obs::event(ObsEvent::GuardTripped {
                epoch: round as u64,
                reason: "online: non-finite params".into(),
            });
            return CandidateMsg::Skipped {
                round,
                cause: "non_finite_params".into(),
            };
        }

        let path = self
            .cfg
            .candidate_dir
            .join(format!("candidate_r{round}.ckpt"));
        match serial::save_checkpoint_path(&path, &Checkpoint::new(self.model.params(), Vec::new()))
        {
            Ok(()) => {
                dar_obs::inc("loop.candidates");
                CandidateMsg::Candidate {
                    round,
                    path,
                    trained_on: clean.len(),
                    rejected,
                }
            }
            Err(e) => CandidateMsg::Skipped {
                round,
                cause: format!("checkpoint_io: {e}"),
            },
        }
    }
}

/// Spawn the trainer on its own thread. Every round's outcome arrives on
/// the returned channel; a panic anywhere in training surfaces as
/// [`CandidateMsg::TrainerDied`] and the thread exits cleanly — serving
/// is structurally unaffected.
pub fn spawn_online_trainer(
    cfg: OnlineTrainerConfig,
    factory: StreamModelFactory,
    feed: FeedConfig,
) -> (JoinHandle<()>, mpsc::Receiver<CandidateMsg>) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("dar-loop-trainer".into())
        .spawn(move || {
            let rounds = cfg.rounds;
            let first = cfg.first_round;
            let verdict = catch_unwind(AssertUnwindSafe(|| {
                let mut trainer = OnlineTrainer::new(
                    cfg,
                    factory.as_ref(),
                    ReviewFeed::starting_at(feed, first as u64),
                );
                for round in first..first + rounds {
                    let msg = trainer.train_round(round);
                    if tx.send(msg).is_err() {
                        return; // controller gone; stop quietly
                    }
                }
                let _ = tx.send(CandidateMsg::Finished);
            }));
            if let Err(payload) = verdict {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                dar_obs::inc("loop.trainer_deaths");
                let _ = tx.send(CandidateMsg::TrainerDied { msg });
            }
        })
        .expect("spawning dar-loop trainer");
    (handle, rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_data::Aspect;

    fn feed_cfg(seed: u64, poison_every: Option<usize>) -> FeedConfig {
        FeedConfig {
            synth: SynthConfig {
                n_train: 24,
                ..SynthConfig::beer(Aspect::Aroma)
            },
            seed,
            poison_every,
        }
    }

    #[test]
    fn feed_is_deterministic_and_chunks_share_the_vocab() {
        let mut a = ReviewFeed::new(feed_cfg(7, None));
        let mut b = ReviewFeed::new(feed_cfg(7, None));
        let (c0a, c0b) = (a.next_chunk(), b.next_chunk());
        assert_eq!(c0a.reviews.len(), 24);
        assert_eq!(
            c0a.reviews[0].ids, c0b.reviews[0].ids,
            "same seed, same stream"
        );

        // Different rounds draw different reviews over the same vocab:
        // every id fits the vocab bound derived from any chunk's draw.
        let c1 = a.next_chunk();
        assert_ne!(c0a.reviews[0].ids, c1.reviews[0].ids, "rounds differ");
        let bound = SynBeer::generate(
            &SynthConfig {
                n_train: 1,
                n_dev: 0,
                n_test: 0,
                ..feed_cfg(7, None).synth
            },
            &mut dar_tensor::rng(999),
        )
        .vocab
        .len();
        for r in c0a.reviews.iter().chain(&c1.reviews) {
            assert!(r.ids.iter().all(|&id| id < bound), "vocab drifted");
        }
    }

    #[test]
    fn poison_is_injected_and_admission_filters_it() {
        let mut feed = ReviewFeed::new(feed_cfg(11, Some(4)));
        let chunk = feed.next_chunk();
        assert_eq!(chunk.poisoned, 6, "every 4th of 24 reviews poisoned");
        let vocab = SynBeer::generate(
            &SynthConfig {
                n_train: 1,
                n_dev: 0,
                n_test: 0,
                ..feed_cfg(11, None).synth
            },
            &mut dar_tensor::rng(999),
        )
        .vocab
        .len();
        let (clean, rejected) = chunk.admit(vocab, 512);
        assert_eq!(rejected, 6, "admission bounces exactly the poison");
        assert_eq!(clean.len(), 18);
        for r in &clean {
            assert!(r.admissible(vocab, 512).is_ok());
        }
    }
}
