//! Divergence guards: a training runtime that survives non-finite losses,
//! loss spikes, and rationale collapse instead of silently producing a
//! broken model.
//!
//! [`GuardedTrainer`] runs the same epoch loop as [`Trainer`] but watches
//! every batch loss and every epoch's dev metrics. When a guard trips it
//! rolls the model — weights, optimizer moments, RNG stream, and
//! early-stopping state — back to the last good epoch-boundary checkpoint,
//! decays the learning rate, and retries, up to a bounded number of times.
//! Every decision is recorded as a structured [`TrainEvent`] so a failed
//! run explains itself rather than panicking.

use std::collections::VecDeque;
use std::path::Path;

use dar_data::{AspectDataset, BatchIter};
use dar_tensor::serial::{self, Checkpoint};
use dar_tensor::{DarError, DarResult};

use crate::config::TrainConfig;
use crate::eval::{evaluate_model, RationaleMetrics};
use crate::models::RationaleModel;
use crate::trainer::{EpochLog, ResumeState, TrainReport};
use crate::Rng;

/// Thresholds and retry budget for [`GuardedTrainer`].
#[derive(Debug, Clone, Copy)]
pub struct GuardPolicy {
    /// Rollback-and-retry attempts before giving up.
    pub max_retries: usize,
    /// Learning-rate multiplier applied on every rollback.
    pub lr_decay: f32,
    /// Rolling window of batch losses for spike detection.
    pub spike_window: usize,
    /// A batch loss beyond `mean + spike_sigmas · σ` of the window trips
    /// the spike guard.
    pub spike_sigmas: f32,
    /// Minimum window fill before the spike guard arms.
    pub spike_warmup: usize,
    /// Dev-set selected fraction at or below this trips the collapse
    /// guard (the generator selects nothing).
    pub collapse_low: f32,
    /// Dev-set selected fraction at or above this trips the collapse
    /// guard (the generator selects everything).
    pub collapse_high: f32,
}

impl GuardPolicy {
    /// Whether a dev/serving selected fraction sits in the collapse band.
    /// Shared by the training guard and the serving circuit breaker so
    /// both layers agree on what "degenerate selector" means.
    pub fn is_collapsed(&self, selected: f32) -> bool {
        selected <= self.collapse_low || selected >= self.collapse_high
    }
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            max_retries: 3,
            lr_decay: 0.5,
            spike_window: 64,
            spike_sigmas: 8.0,
            spike_warmup: 16,
            collapse_low: 0.005,
            collapse_high: 0.995,
        }
    }
}

/// Why a guard tripped.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardReason {
    /// A train step returned NaN/∞ loss. With taint tracking on
    /// (`DAR_TAINT=1`), `origin` names the op that first produced the
    /// non-finite value.
    NonFiniteLoss {
        step: usize,
        origin: Option<&'static str>,
    },
    /// A parameter went NaN/∞ (detected at the epoch boundary); `origin`
    /// as above when the taint latch caught the producing op.
    NonFiniteParams {
        epoch: usize,
        origin: Option<&'static str>,
    },
    /// A batch loss jumped far outside the recent distribution.
    LossSpike {
        step: usize,
        loss: f32,
        mean: f32,
        sigma: f32,
    },
    /// The generator degenerated to selecting (almost) nothing or
    /// (almost) everything on dev.
    RationaleCollapse { epoch: usize, selected: f32 },
}

impl std::fmt::Display for GuardReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardReason::NonFiniteLoss { step, origin } => {
                write!(f, "non-finite loss at step {step}")?;
                if let Some(op) = origin {
                    write!(f, " (first tainted by op `{op}`)")?;
                }
                Ok(())
            }
            GuardReason::NonFiniteParams { epoch, origin } => {
                write!(f, "non-finite parameters after epoch {epoch}")?;
                if let Some(op) = origin {
                    write!(f, " (first tainted by op `{op}`)")?;
                }
                Ok(())
            }
            GuardReason::LossSpike {
                step,
                loss,
                mean,
                sigma,
            } => write!(
                f,
                "loss spike at step {step}: {loss:.4} vs window {mean:.4}±{sigma:.4}"
            ),
            GuardReason::RationaleCollapse { epoch, selected } => {
                write!(
                    f,
                    "rationale collapse at epoch {epoch}: selected {selected:.3}"
                )
            }
        }
    }
}

/// Structured log of a guarded run — the answer to "what did training do".
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// An epoch finished clean and was checkpointed.
    EpochDone {
        epoch: usize,
        train_loss: f32,
        dev_score: f32,
    },
    /// A guard tripped mid-epoch or at the epoch boundary.
    GuardTripped { epoch: usize, reason: GuardReason },
    /// The run rolled back to the last good checkpoint and decayed LR.
    RolledBack {
        to_epoch: usize,
        retry: usize,
        lr_scale: f32,
    },
    /// The retry budget ran out.
    RetriesExhausted { epoch: usize },
}

/// A [`TrainReport`] plus the guard event log.
#[derive(Debug, Clone)]
pub struct GuardedReport {
    pub report: TrainReport,
    pub events: Vec<TrainEvent>,
    /// Rollbacks performed over the whole run.
    pub rollbacks: usize,
}

/// Rolling mean/σ window over recent batch losses.
struct LossWindow {
    buf: VecDeque<f32>,
    cap: usize,
}

impl LossWindow {
    fn new(cap: usize) -> Self {
        LossWindow {
            buf: VecDeque::with_capacity(cap),
            cap: cap.max(2),
        }
    }

    fn push(&mut self, loss: f32) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(loss);
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn mean_sigma(&self) -> (f32, f32) {
        let n = self.buf.len().max(1) as f64;
        let mean = self.buf.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = self
            .buf
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean as f32, var.sqrt() as f32)
    }

    fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Fault-tolerant wrapper around the [`Trainer`](crate::Trainer) loop.
#[derive(Debug, Clone, Copy)]
pub struct GuardedTrainer {
    pub cfg: TrainConfig,
    pub policy: GuardPolicy,
}

impl GuardedTrainer {
    pub fn new(cfg: TrainConfig, policy: GuardPolicy) -> Self {
        GuardedTrainer { cfg, policy }
    }

    fn dev_score(m: &RationaleMetrics) -> f32 {
        m.acc.unwrap_or(m.f1)
    }

    /// Train with divergence guards, checkpointing every clean epoch to
    /// `ckpt`. Guard trips roll back to that checkpoint and retry with a
    /// decayed learning rate; only an exhausted retry budget is an error
    /// ([`DarError::RetriesExhausted`]). The checkpoint stays compatible
    /// with [`crate::Trainer::fit_resume`].
    pub fn fit(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
        ckpt: &Path,
    ) -> DarResult<GuardedReport> {
        let _train_span = dar_obs::span("train");
        let cfg = self.cfg;
        let policy = self.policy;
        let mut events = Vec::new();
        let mut rollbacks = 0usize;
        let mut retries = 0usize;
        let mut lr_scale = 1.0f32;

        let mut history: Vec<EpochLog> = Vec::with_capacity(cfg.epochs);
        let mut best_score = f32::NEG_INFINITY;
        let mut best_epoch = 0usize;
        let mut best_snap = model.snapshot();
        let mut since_best = 0usize;
        let mut window = LossWindow::new(policy.spike_window);

        // Seed checkpoint before the first step, so even an epoch-0
        // divergence has a good state to roll back to.
        self.save(
            model, rng, ckpt, 0, best_epoch, best_score, since_best, &history, &best_snap,
        )?;

        let mut epoch = 0usize;
        while epoch < cfg.epochs {
            if let Some(patience) = cfg.patience {
                if since_best >= patience {
                    break;
                }
            }
            match self.try_epoch(model, data, rng, epoch, &mut window) {
                Ok(train_loss) => {
                    let dev_metrics = {
                        let _eval_span = dar_obs::span("eval");
                        evaluate_model(model, &data.dev, cfg.batch_size)
                    };
                    let selected = dev_metrics.sparsity;
                    if policy.is_collapsed(selected) {
                        let reason = GuardReason::RationaleCollapse { epoch, selected };
                        self.rollback(
                            model,
                            rng,
                            ckpt,
                            reason,
                            epoch,
                            &mut events,
                            &mut retries,
                            &mut rollbacks,
                            &mut lr_scale,
                            &mut window,
                            &mut history,
                            &mut best_score,
                            &mut best_epoch,
                            &mut best_snap,
                            &mut since_best,
                        )?;
                        epoch = self.load_epoch(ckpt)?;
                        continue;
                    }
                    let score = Self::dev_score(&dev_metrics);
                    history.push(EpochLog {
                        epoch,
                        train_loss,
                        dev_score: score,
                    });
                    events.push(TrainEvent::EpochDone {
                        epoch,
                        train_loss,
                        dev_score: score,
                    });
                    dar_obs::event(dar_obs::ObsEvent::EpochDone {
                        epoch: epoch as u64,
                        train_loss,
                        dev_score: score,
                    });
                    dar_obs::inc("train.epochs");
                    if cfg.verbose {
                        println!(
                            "[{}|guarded] epoch {epoch:>3}  loss {train_loss:.4}  dev {score:.4}",
                            model.name()
                        );
                    }
                    if score > best_score {
                        best_score = score;
                        best_epoch = epoch;
                        best_snap = model.snapshot();
                        since_best = 0;
                    } else {
                        since_best += 1;
                    }
                    self.save(
                        model,
                        rng,
                        ckpt,
                        epoch + 1,
                        best_epoch,
                        best_score,
                        since_best,
                        &history,
                        &best_snap,
                    )?;
                    // The fresh checkpoint carries any LR decay already, so
                    // the pending scale (applied on top of the *stored* LR
                    // during rollback) starts over.
                    retries = 0;
                    lr_scale = 1.0;
                    epoch += 1;
                }
                Err(reason) => {
                    self.rollback(
                        model,
                        rng,
                        ckpt,
                        reason,
                        epoch,
                        &mut events,
                        &mut retries,
                        &mut rollbacks,
                        &mut lr_scale,
                        &mut window,
                        &mut history,
                        &mut best_score,
                        &mut best_epoch,
                        &mut best_snap,
                        &mut since_best,
                    )?;
                    epoch = self.load_epoch(ckpt)?;
                }
            }
        }

        model.restore(&best_snap);
        let (dev, test) = {
            let _eval_span = dar_obs::span("eval");
            (
                evaluate_model(model, &data.dev, cfg.batch_size),
                evaluate_model(model, &data.test, cfg.batch_size),
            )
        };
        dar_obs::gauge_set("train.best_epoch", best_epoch as i64);
        Ok(GuardedReport {
            report: TrainReport {
                model_name: model.name().to_owned(),
                epochs_run: history.len(),
                best_epoch,
                history,
                test,
                dev,
            },
            events,
            rollbacks,
        })
    }

    /// One epoch under per-batch guards; `Err` names the tripped guard.
    fn try_epoch(
        &self,
        model: &mut dyn RationaleModel,
        data: &AspectDataset,
        rng: &mut Rng,
        epoch: usize,
        window: &mut LossWindow,
    ) -> Result<f32, GuardReason> {
        let _epoch_span = dar_obs::span("epoch");
        let policy = self.policy;
        let taint = dar_tensor::taint_enabled();
        let mut loss_sum = 0.0;
        let mut n = 0usize;
        for batch in BatchIter::shuffled(&data.train, self.cfg.batch_size, rng) {
            if taint {
                // Per-step latch: anything recorded now was produced by
                // *this* step's forward/backward graph.
                dar_tensor::clear_taint();
            }
            let loss = model.train_step_sharded(&batch, rng, self.cfg.grad_accum_shards);
            let step = n;
            if !loss.is_finite() {
                let origin = dar_tensor::first_taint().map(|t| t.op);
                return Err(GuardReason::NonFiniteLoss { step, origin });
            }
            if window.len() >= policy.spike_warmup {
                let (mean, sigma) = window.mean_sigma();
                // σ floors at a fraction of the mean so a near-constant
                // loss window doesn't turn noise into spikes.
                let sigma = sigma.max(0.05 * mean.abs()).max(1e-6);
                if loss > mean + policy.spike_sigmas * sigma {
                    return Err(GuardReason::LossSpike {
                        step,
                        loss,
                        mean,
                        sigma,
                    });
                }
            }
            window.push(loss);
            loss_sum += loss;
            n += 1;
        }
        let any_bad_param = model
            .params()
            .iter()
            .any(|p| p.to_vec().iter().any(|v| !v.is_finite()));
        if any_bad_param {
            let origin = dar_tensor::first_taint().map(|t| t.op);
            return Err(GuardReason::NonFiniteParams { epoch, origin });
        }
        dar_obs::add("train.steps", n as u64);
        Ok(loss_sum / n.max(1) as f32)
    }

    #[allow(clippy::too_many_arguments)]
    fn rollback(
        &self,
        model: &mut dyn RationaleModel,
        rng: &mut Rng,
        ckpt: &Path,
        reason: GuardReason,
        epoch: usize,
        events: &mut Vec<TrainEvent>,
        retries: &mut usize,
        rollbacks: &mut usize,
        lr_scale: &mut f32,
        window: &mut LossWindow,
        history: &mut Vec<EpochLog>,
        best_score: &mut f32,
        best_epoch: &mut usize,
        best_snap: &mut Vec<Vec<f32>>,
        since_best: &mut usize,
    ) -> DarResult<()> {
        events.push(TrainEvent::GuardTripped {
            epoch,
            reason: reason.clone(),
        });
        dar_obs::event(dar_obs::ObsEvent::GuardTripped {
            epoch: epoch as u64,
            reason: reason.to_string(),
        });
        dar_obs::inc("guard.trips");
        if *retries >= self.policy.max_retries {
            events.push(TrainEvent::RetriesExhausted { epoch });
            dar_obs::event(dar_obs::ObsEvent::RetriesExhausted {
                epoch: epoch as u64,
            });
            return Err(DarError::RetriesExhausted {
                retries: *retries,
                last: reason.to_string(),
            });
        }
        *retries += 1;
        *rollbacks += 1;
        *lr_scale *= self.policy.lr_decay;

        let loaded = serial::load_checkpoint_path(ckpt)?;
        let state = ResumeState::decode(&loaded.meta)?;
        serial::restore_into(&loaded.tensors, &model.params())?;
        // Decay the LR carried inside the restored optimizer states, so
        // the retried epoch takes smaller steps than the diverged one.
        let mut optim = state.optim.clone();
        for s in &mut optim {
            s.lr *= *lr_scale;
        }
        model.restore_optim(&optim)?;
        *rng = Rng::from_state(state.rng_state);
        *history = state.history;
        *best_score = state.best_score;
        *best_epoch = state.best_epoch;
        *best_snap = state.best_snap;
        *since_best = state.since_best;
        // The window is poisoned by the diverged trajectory.
        window.clear();
        events.push(TrainEvent::RolledBack {
            to_epoch: state.next_epoch,
            retry: *retries,
            lr_scale: *lr_scale,
        });
        dar_obs::event(dar_obs::ObsEvent::RolledBack {
            to_epoch: state.next_epoch as u64,
            retry: *retries as u64,
            lr_scale: *lr_scale,
        });
        dar_obs::inc("guard.rollbacks");
        if self.cfg.verbose {
            println!(
                "[{}|guarded] rollback to epoch {} (retry {}, lr×{:.3})",
                model.name(),
                state.next_epoch,
                retries,
                lr_scale
            );
        }
        Ok(())
    }

    /// Next epoch index recorded in the checkpoint on disk.
    fn load_epoch(&self, ckpt: &Path) -> DarResult<usize> {
        let loaded = serial::load_checkpoint_path(ckpt)?;
        Ok(ResumeState::decode(&loaded.meta)?.next_epoch)
    }

    #[allow(clippy::too_many_arguments)]
    fn save(
        &self,
        model: &dyn RationaleModel,
        rng: &Rng,
        ckpt: &Path,
        next_epoch: usize,
        best_epoch: usize,
        best_score: f32,
        since_best: usize,
        history: &[EpochLog],
        best_snap: &[Vec<f32>],
    ) -> DarResult<()> {
        let state = ResumeState {
            model_name: model.name().to_owned(),
            rng_state: rng.state(),
            next_epoch,
            best_epoch,
            best_score,
            since_best,
            history: history.to_vec(),
            best_snap: best_snap.to_vec(),
            optim: model.optim_states(),
        };
        {
            let _ckpt_span = dar_obs::span("checkpoint");
            serial::save_checkpoint_path(ckpt, &Checkpoint::new(model.params(), state.encode()))?;
        }
        dar_obs::event(dar_obs::ObsEvent::CheckpointSaved {
            next_epoch: next_epoch as u64,
        });
        dar_obs::inc("train.checkpoints_saved");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::models::test_support::{max_len, tiny_config, tiny_dataset, tiny_embedding};
    use crate::models::Rnp;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_guard_{name}_{}", std::process::id()));
        p
    }

    /// Guards wide open so none can fire; the guarded loop must then be
    /// bit-identical to the plain trainer.
    fn open_policy() -> GuardPolicy {
        GuardPolicy {
            spike_sigmas: f32::INFINITY,
            collapse_low: -1.0,
            collapse_high: 2.0,
            ..GuardPolicy::default()
        }
    }

    #[test]
    fn clean_run_matches_plain_trainer_metrics() {
        let data = tiny_dataset(160);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 161);
        let tcfg = TrainConfig {
            epochs: 3,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };

        let mut rng = dar_tensor::rng(162);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let plain = crate::Trainer::new(tcfg).fit(&mut model, &data, &mut rng);

        let path = tmpfile("clean");
        let mut rng = dar_tensor::rng(162);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let guarded = GuardedTrainer::new(tcfg, open_policy())
            .fit(&mut model, &data, &mut rng, &path)
            .unwrap();

        assert_eq!(
            guarded.rollbacks, 0,
            "unexpected guard trips: {:?}",
            guarded.events
        );
        assert_eq!(guarded.report.test.f1, plain.test.f1);
        assert_eq!(guarded.report.test.acc, plain.test.acc);
        assert_eq!(
            guarded
                .events
                .iter()
                .filter(|e| matches!(e, TrainEvent::EpochDone { .. }))
                .count(),
            3
        );
        std::fs::remove_file(path).ok();
    }

    /// The collapse guard catches a transiently degenerate selector and
    /// the rollback + LR decay lets the run recover and finish (observed
    /// behavior of this fixture under the default policy).
    #[test]
    fn collapse_guard_recovers_via_rollback() {
        let data = tiny_dataset(160);
        let cfg = tiny_config();
        let emb = tiny_embedding(&data, 161);
        let tcfg = TrainConfig {
            epochs: 3,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };
        let path = tmpfile("collapse");
        let mut rng = dar_tensor::rng(162);
        let mut model = Rnp::new(&cfg, &emb, max_len(&data), &mut rng);
        let guarded = GuardedTrainer::new(tcfg, GuardPolicy::default())
            .fit(&mut model, &data, &mut rng, &path)
            .unwrap();
        assert!(
            guarded.rollbacks >= 1,
            "expected a collapse trip: {:?}",
            guarded.events
        );
        assert!(guarded.events.iter().any(|e| matches!(
            e,
            TrainEvent::GuardTripped {
                reason: GuardReason::RationaleCollapse { .. },
                ..
            }
        )));
        assert_eq!(guarded.report.epochs_run, 3, "run must still complete");
        assert!(guarded.report.test.f1.is_finite());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loss_window_statistics() {
        let mut w = LossWindow::new(4);
        for v in [1.0, 1.0, 1.0, 1.0, 5.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 4); // oldest evicted
        let (mean, sigma) = w.mean_sigma();
        assert!((mean - 2.0).abs() < 1e-6);
        assert!(sigma > 1.0);
        w.clear();
        assert_eq!(w.len(), 0);
    }
}
