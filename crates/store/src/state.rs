//! [`DurableState`]: the promotion state coordinator the online loop
//! threads its decisions through.
//!
//! One state directory holds:
//!
//! ```text
//! state.wal            — the write-ahead journal (crate::wal)
//! MANIFEST             — generation + incumbent pointer (crate::manifest)
//! incumbent_g{N}.ckpt  — durable incumbent checkpoints, one per generation
//! candidate ckpts      — whatever the caller parks here (swept of *.tmp.*)
//! ```
//!
//! # Exactly-once promotion across restarts
//!
//! A promotion executes in this order, each step durable before the next:
//!
//! 1. copy the candidate checkpoint to `incumbent_g{gen}.ckpt`
//!    ([`crate::write_atomic`]: temp → fsync → rename → dir fsync);
//! 2. append `Promoted { round, generation, ckpt }` to the WAL and
//!    fsync — **this append is the commit point**;
//! 3. swap the manifest to the new generation (atomic);
//! 4. publish the weights in memory.
//!
//! A crash before 2 means the promotion never happened (the orphan
//! checkpoint is harmless and gets re-created identically on retry); a
//! crash between 2 and 3 is rolled *forward* on recovery, because the
//! WAL names a generation newer than the manifest and the checkpoint
//! bytes for it are already durable. A round whose terminal record
//! (`Promoted`/`RolledBack`/`RoundSkipped`) replays is never
//! re-evaluated, and the feed cursor record keeps the trainer from
//! re-emitting completed rounds — together: each round reaches exactly
//! one durable verdict, no matter where the process dies.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dar_obs::ObsEvent;
use dar_tensor::serial::codec;
use dar_tensor::{DarError, DarResult};

use crate::manifest::{load_manifest, store_manifest, Manifest};
use crate::storage::{sweep_orphan_tmps, write_atomic, Storage};
use crate::wal::Wal;

/// File name of the WAL inside a state dir.
pub const WAL_FILE: &str = "state.wal";
/// File name of the manifest inside a state dir.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One journaled fact about the online loop. Encoded as
/// `tag u32 · fields` with the shared little-endian codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateRecord {
    /// Round `round` entered canary evaluation.
    CanaryStarted { round: usize },
    /// Round `round` was promoted as generation `generation`; its
    /// durable checkpoint is `ckpt` (file name inside the state dir).
    Promoted {
        round: usize,
        generation: u64,
        ckpt: String,
    },
    /// Round `round` was rolled back; `cause` is the stable cause string
    /// (e.g. `accuracy_regressed`).
    RolledBack { round: usize, cause: String },
    /// Round `round` was skipped without a canary (e.g. rejected
    /// checkpoint); `cause` says why.
    RoundSkipped { round: usize, cause: String },
    /// The feed may resume at `next_round`; everything below it is done.
    FeedCursor { next_round: usize },
    /// Replay found and removed `lost_bytes` of torn tail. Written by
    /// recovery itself, so the damage is part of the permanent record.
    TailTruncated { lost_bytes: u64 },
}

const TAG_CANARY_STARTED: u32 = 1;
const TAG_PROMOTED: u32 = 2;
const TAG_ROLLED_BACK: u32 = 3;
const TAG_ROUND_SKIPPED: u32 = 4;
const TAG_FEED_CURSOR: u32 = 5;
const TAG_TAIL_TRUNCATED: u32 = 6;

impl StateRecord {
    /// Stable snake_case kind, used in obs events and test assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            StateRecord::CanaryStarted { .. } => "canary_started",
            StateRecord::Promoted { .. } => "promoted",
            StateRecord::RolledBack { .. } => "rolled_back",
            StateRecord::RoundSkipped { .. } => "round_skipped",
            StateRecord::FeedCursor { .. } => "feed_cursor",
            StateRecord::TailTruncated { .. } => "tail_truncated",
        }
    }

    /// The round this record is about, if any.
    pub fn round(&self) -> Option<usize> {
        match self {
            StateRecord::CanaryStarted { round }
            | StateRecord::Promoted { round, .. }
            | StateRecord::RolledBack { round, .. }
            | StateRecord::RoundSkipped { round, .. } => Some(*round),
            StateRecord::FeedCursor { .. } | StateRecord::TailTruncated { .. } => None,
        }
    }

    /// Terminal records end a round's life: it must never be canaried
    /// or promoted again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            StateRecord::Promoted { .. }
                | StateRecord::RolledBack { .. }
                | StateRecord::RoundSkipped { .. }
        )
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        match self {
            StateRecord::CanaryStarted { round } => {
                codec::put_u32(&mut out, TAG_CANARY_STARTED);
                codec::put_u64(&mut out, *round as u64);
            }
            StateRecord::Promoted {
                round,
                generation,
                ckpt,
            } => {
                codec::put_u32(&mut out, TAG_PROMOTED);
                codec::put_u64(&mut out, *round as u64);
                codec::put_u64(&mut out, *generation);
                codec::put_str(&mut out, ckpt);
            }
            StateRecord::RolledBack { round, cause } => {
                codec::put_u32(&mut out, TAG_ROLLED_BACK);
                codec::put_u64(&mut out, *round as u64);
                codec::put_str(&mut out, cause);
            }
            StateRecord::RoundSkipped { round, cause } => {
                codec::put_u32(&mut out, TAG_ROUND_SKIPPED);
                codec::put_u64(&mut out, *round as u64);
                codec::put_str(&mut out, cause);
            }
            StateRecord::FeedCursor { next_round } => {
                codec::put_u32(&mut out, TAG_FEED_CURSOR);
                codec::put_u64(&mut out, *next_round as u64);
            }
            StateRecord::TailTruncated { lost_bytes } => {
                codec::put_u32(&mut out, TAG_TAIL_TRUNCATED);
                codec::put_u64(&mut out, *lost_bytes);
            }
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> DarResult<StateRecord> {
        let mut c = codec::Cursor::new(bytes);
        let rec = match c.u32()? {
            TAG_CANARY_STARTED => StateRecord::CanaryStarted {
                round: c.u64()? as usize,
            },
            TAG_PROMOTED => StateRecord::Promoted {
                round: c.u64()? as usize,
                generation: c.u64()?,
                ckpt: c.str_()?,
            },
            TAG_ROLLED_BACK => StateRecord::RolledBack {
                round: c.u64()? as usize,
                cause: c.str_()?,
            },
            TAG_ROUND_SKIPPED => StateRecord::RoundSkipped {
                round: c.u64()? as usize,
                cause: c.str_()?,
            },
            TAG_FEED_CURSOR => StateRecord::FeedCursor {
                next_round: c.u64()? as usize,
            },
            TAG_TAIL_TRUNCATED => StateRecord::TailTruncated {
                lost_bytes: c.u64()?,
            },
            tag => {
                return Err(DarError::InvalidData(format!(
                    "unknown state record tag {tag}"
                )))
            }
        };
        if !c.is_empty() {
            return Err(DarError::InvalidData(
                "trailing bytes after state record".to_owned(),
            ));
        }
        Ok(rec)
    }
}

/// What [`DurableState::open`] reconstructed.
#[derive(Debug)]
pub struct Recovery {
    /// Every committed record, in append order (including records this
    /// recovery itself appended, e.g. [`StateRecord::TailTruncated`]).
    pub records: Vec<StateRecord>,
    /// Current incumbent generation (0 = nothing ever promoted).
    pub generation: u64,
    /// File name of the incumbent checkpoint inside the state dir.
    pub incumbent: Option<String>,
    /// First round the feed/trainer should emit.
    pub resume_round: usize,
    /// Torn-tail bytes discarded from the WAL during this open.
    pub truncated_bytes: u64,
    /// Orphaned `*.tmp.*` files swept from the state dir.
    pub orphans_swept: u64,
    /// True when a journaled promotion was newer than the manifest and
    /// the manifest was rolled forward to match.
    pub rolled_forward: bool,
}

/// The durable promotion journal: a WAL + manifest pair under one state
/// directory, with the exactly-once bookkeeping the online loop needs.
pub struct DurableState {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    wal: Wal,
    generation: u64,
    incumbent: Option<String>,
    terminal_rounds: Vec<usize>,
    resume_round: usize,
}

impl DurableState {
    /// Open (creating if needed) the state dir, replay the WAL, sweep
    /// temp orphans, and reconcile the manifest with the journal —
    /// rolling a committed-but-unswapped promotion forward. Emits
    /// `recovery_started` / `wal_truncated_tail` / `recovery_complete`
    /// obs events into the deterministic journal section.
    pub fn open(storage: Arc<dyn Storage>, dir: impl Into<PathBuf>) -> DarResult<(Self, Recovery)> {
        let dir = dir.into();
        storage.create_dir_all(&dir)?;
        dar_obs::event(ObsEvent::RecoveryStarted);

        let orphans_swept = sweep_orphan_tmps(&*storage, &dir)?;
        let (wal, replay) = Wal::open(Arc::clone(&storage), dir.join(WAL_FILE))?;
        if replay.torn_bytes > 0 {
            dar_obs::event(ObsEvent::WalTruncatedTail {
                lost_bytes: replay.torn_bytes,
            });
        }

        let mut records = Vec::with_capacity(replay.records.len());
        for payload in &replay.records {
            records.push(StateRecord::decode(payload)?);
        }

        let manifest = load_manifest(&*storage, &dir.join(MANIFEST_FILE))?;
        let mut generation = manifest.as_ref().map_or(0, |m| m.generation);
        let mut incumbent = manifest.map(|m| m.incumbent);

        // Roll forward: the WAL is the truth; the manifest only caches it.
        let mut rolled_forward = false;
        let newest_promotion = records
            .iter()
            .filter_map(|r| match r {
                StateRecord::Promoted {
                    generation, ckpt, ..
                } => Some((*generation, ckpt.clone())),
                _ => None,
            })
            .max_by_key(|(g, _)| *g);
        if let Some((wal_gen, ckpt)) = newest_promotion {
            if wal_gen > generation {
                if !storage.exists(&dir.join(&ckpt)) {
                    return Err(DarError::Corrupt(format!(
                        "journaled promotion g{wal_gen} names missing checkpoint {ckpt}"
                    )));
                }
                store_manifest(
                    &*storage,
                    &dir.join(MANIFEST_FILE),
                    &Manifest {
                        generation: wal_gen,
                        incumbent: ckpt.clone(),
                    },
                )?;
                generation = wal_gen;
                incumbent = Some(ckpt);
                rolled_forward = true;
            }
        }

        let mut state = DurableState {
            storage,
            dir,
            wal,
            generation,
            incumbent,
            terminal_rounds: Vec::new(),
            resume_round: 0,
        };
        for rec in &records {
            state.absorb(rec);
        }

        // Journal the tail truncation so the damage is part of the
        // permanent record (and so the next replay sees a clean file).
        if replay.torn_bytes > 0 {
            let rec = StateRecord::TailTruncated {
                lost_bytes: replay.torn_bytes,
            };
            state.append(&rec)?;
            records.push(rec);
        }

        dar_obs::event(ObsEvent::RecoveryComplete {
            records: records.len() as u64,
            generation: state.generation,
        });
        let recovery = Recovery {
            generation: state.generation,
            incumbent: state.incumbent.clone(),
            resume_round: state.resume_round,
            truncated_bytes: replay.torn_bytes,
            orphans_swept,
            rolled_forward,
            records,
        };
        Ok((state, recovery))
    }

    /// Fold one replayed/appended record into the in-memory summary.
    fn absorb(&mut self, rec: &StateRecord) {
        if rec.is_terminal() {
            if let Some(round) = rec.round() {
                if !self.terminal_rounds.contains(&round) {
                    self.terminal_rounds.push(round);
                }
                // A terminal verdict implies the feed is past this round.
                self.resume_round = self.resume_round.max(round + 1);
            }
        }
        if let StateRecord::FeedCursor { next_round } = rec {
            self.resume_round = self.resume_round.max(*next_round);
        }
    }

    fn append(&mut self, rec: &StateRecord) -> DarResult<()> {
        self.wal.append(&rec.encode())?;
        dar_obs::event(ObsEvent::WalAppend { record: rec.kind() });
        self.absorb(rec);
        Ok(())
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current incumbent generation (0 before any promotion).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Incumbent checkpoint file name, if any round was ever promoted.
    pub fn incumbent(&self) -> Option<&str> {
        self.incumbent.as_deref()
    }

    /// Absolute path of the incumbent checkpoint, if any.
    pub fn incumbent_path(&self) -> Option<PathBuf> {
        self.incumbent.as_ref().map(|n| self.dir.join(n))
    }

    /// First round the feed should emit after recovery.
    pub fn resume_round(&self) -> usize {
        self.resume_round
    }

    /// True when `round` already has a durable terminal verdict.
    pub fn is_terminal(&self, round: usize) -> bool {
        self.terminal_rounds.contains(&round)
    }

    /// Journal that `round` entered canary evaluation.
    pub fn log_canary_started(&mut self, round: usize) -> DarResult<()> {
        self.append(&StateRecord::CanaryStarted { round })
    }

    /// Execute a full durable promotion of `round` whose candidate
    /// checkpoint bytes are at `candidate_path`: land the incumbent copy
    /// (step 1), commit the WAL record (step 2 — the commit point), swap
    /// the manifest (step 3). Returns the new generation. Double
    /// promotion of a terminal round is refused.
    pub fn log_promoted(&mut self, round: usize, candidate_path: &Path) -> DarResult<u64> {
        if self.is_terminal(round) {
            return Err(DarError::InvalidData(format!(
                "round {round} already has a terminal verdict"
            )));
        }
        let generation = self.generation + 1;
        let ckpt = format!("incumbent_g{generation}.ckpt");
        let bytes = self.storage.read(candidate_path)?;
        write_atomic(&*self.storage, &self.dir.join(&ckpt), &bytes)?;
        self.append(&StateRecord::Promoted {
            round,
            generation,
            ckpt: ckpt.clone(),
        })?;
        store_manifest(
            &*self.storage,
            &self.dir.join(MANIFEST_FILE),
            &Manifest {
                generation,
                incumbent: ckpt.clone(),
            },
        )?;
        self.generation = generation;
        self.incumbent = Some(ckpt);
        Ok(generation)
    }

    /// Journal a rollback verdict for `round`.
    pub fn log_rolled_back(&mut self, round: usize, cause: &str) -> DarResult<()> {
        self.append(&StateRecord::RolledBack {
            round,
            cause: cause.to_owned(),
        })
    }

    /// Journal that `round` was skipped without a canary.
    pub fn log_round_skipped(&mut self, round: usize, cause: &str) -> DarResult<()> {
        self.append(&StateRecord::RoundSkipped {
            round,
            cause: cause.to_owned(),
        })
    }

    /// Journal that the feed may resume at `next_round`.
    pub fn log_feed_cursor(&mut self, next_round: usize) -> DarResult<()> {
        self.append(&StateRecord::FeedCursor { next_round })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultyStorage, RealStorage, StorageFaultPlan};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dar_store_st_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn real() -> Arc<dyn Storage> {
        Arc::new(RealStorage)
    }

    fn candidate(dir: &Path, name: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, format!("weights:{name}")).unwrap();
        p
    }

    #[test]
    fn records_round_trip_through_encode_decode() {
        let recs = [
            StateRecord::CanaryStarted { round: 3 },
            StateRecord::Promoted {
                round: 3,
                generation: 2,
                ckpt: "incumbent_g2.ckpt".to_owned(),
            },
            StateRecord::RolledBack {
                round: 4,
                cause: "accuracy_regressed".to_owned(),
            },
            StateRecord::RoundSkipped {
                round: 5,
                cause: "crc_mismatch".to_owned(),
            },
            StateRecord::FeedCursor { next_round: 6 },
            StateRecord::TailTruncated { lost_bytes: 17 },
        ];
        for rec in recs {
            assert_eq!(StateRecord::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(StateRecord::decode(&[99, 0, 0, 0]).is_err());
    }

    #[test]
    fn promote_then_reopen_restores_generation_and_incumbent() {
        let d = tmpdir("promote");
        let cand = candidate(&d, "cand.ckpt");
        {
            let (mut st, r) = DurableState::open(real(), &d).unwrap();
            assert_eq!(r.generation, 0);
            st.log_canary_started(0).unwrap();
            assert_eq!(st.log_promoted(0, &cand).unwrap(), 1);
            st.log_feed_cursor(1).unwrap();
        }
        let (st, r) = DurableState::open(real(), &d).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.incumbent.as_deref(), Some("incumbent_g1.ckpt"));
        assert_eq!(r.resume_round, 1);
        assert!(st.is_terminal(0));
        assert!(!r.rolled_forward);
        assert_eq!(
            std::fs::read(st.incumbent_path().unwrap()).unwrap(),
            b"weights:cand.ckpt"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn crash_between_wal_commit_and_manifest_swap_rolls_forward() {
        let d = tmpdir("rollfwd");
        let cand = candidate(&d, "cand.ckpt");
        {
            let (mut st, _) = DurableState::open(real(), &d).unwrap();
            st.log_promoted(0, &cand).unwrap();
        }
        // Simulate the crash: rewind the manifest to generation 0 (i.e.
        // the swap never landed) while WAL + checkpoint are durable.
        std::fs::remove_file(d.join(MANIFEST_FILE)).unwrap();
        let (st, r) = DurableState::open(real(), &d).unwrap();
        assert!(r.rolled_forward, "manifest must be rolled forward");
        assert_eq!(st.generation(), 1);
        assert_eq!(st.incumbent(), Some("incumbent_g1.ckpt"));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn double_promotion_of_a_terminal_round_is_refused() {
        let d = tmpdir("double");
        let cand = candidate(&d, "cand.ckpt");
        let (mut st, _) = DurableState::open(real(), &d).unwrap();
        st.log_promoted(2, &cand).unwrap();
        assert!(st.log_promoted(2, &cand).is_err());
        assert!(st.is_terminal(2));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_tail_is_journaled_and_resume_round_survives() {
        let d = tmpdir("tail");
        {
            let (mut st, _) = DurableState::open(real(), &d).unwrap();
            st.log_rolled_back(0, "accuracy_regressed").unwrap();
            st.log_feed_cursor(1).unwrap();
        }
        // Torn half-frame at the WAL tail.
        RealStorage
            .append_sync(&d.join(WAL_FILE), &[44, 0, 0, 0, 7])
            .unwrap();
        let (st, r) = DurableState::open(real(), &d).unwrap();
        assert_eq!(r.truncated_bytes, 5);
        assert!(matches!(
            r.records.last(),
            Some(StateRecord::TailTruncated { lost_bytes: 5 })
        ));
        assert_eq!(st.resume_round(), 1);
        // The truncation record itself is durable: a third open replays it.
        let (_, r) = DurableState::open(real(), &d).unwrap();
        assert!(r
            .records
            .iter()
            .any(|x| matches!(x, StateRecord::TailTruncated { lost_bytes: 5 })));
        assert_eq!(r.truncated_bytes, 0);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn failed_promotion_leaves_no_record_and_no_incumbent_change() {
        let d = tmpdir("failpromo");
        let cand = candidate(&d, "cand.ckpt");
        {
            // Crash valve: WAL creation is op 0, enospc kills the
            // incumbent-copy temp write before anything is journaled.
            let faulty = Arc::new(FaultyStorage::new(StorageFaultPlan {
                enospc_at: Some(1),
                ..Default::default()
            }));
            let (mut st, _) = DurableState::open(faulty, &d).unwrap();
            assert!(st.log_promoted(0, &cand).is_err());
        }
        let (st, r) = DurableState::open(real(), &d).unwrap();
        assert_eq!(st.generation(), 0, "failed promotion must not commit");
        assert!(r.records.iter().all(|x| !x.is_terminal()));
        assert!(!st.is_terminal(0));
        std::fs::remove_dir_all(&d).ok();
    }
}
