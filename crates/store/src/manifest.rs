//! The generation manifest: a tiny, atomically-swapped file naming the
//! incumbent checkpoint and its monotonic generation number.
//!
//! # Format (little-endian)
//!
//! ```text
//! magic `DARMAN01` (8 bytes) · generation u64 · incumbent str
//! crc32 u32 — IEEE CRC-32 of every preceding byte
//! ```
//!
//! The manifest is only ever replaced via [`crate::write_atomic`]
//! (temp-write → fsync → rename → directory fsync), so a reader sees
//! either the old manifest or the new one, never a half-written hybrid.
//! Because of that, a CRC failure here is *not* a tolerable torn tail
//! the way it is for the WAL — it means real damage (bit rot, a
//! non-atomic writer) and is surfaced as a hard error rather than
//! silently regressing the generation.

use std::path::Path;

use dar_tensor::serial::codec;
use dar_tensor::{DarError, DarResult};

use crate::storage::{write_atomic, Storage};
use crate::wal::crc32;

const MAGIC: &[u8; 8] = b"DARMAN01";

/// Which checkpoint is the incumbent, and how many promotions deep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic promotion counter; never reused, never goes backwards.
    pub generation: u64,
    /// File name (relative to the state dir) of the incumbent checkpoint.
    pub incumbent: String,
}

/// Encode + atomically land `manifest` at `path`.
pub fn store_manifest(storage: &dyn Storage, path: &Path, manifest: &Manifest) -> DarResult<()> {
    let mut buf = Vec::with_capacity(32 + manifest.incumbent.len());
    buf.extend_from_slice(MAGIC);
    codec::put_u64(&mut buf, manifest.generation);
    codec::put_str(&mut buf, &manifest.incumbent);
    let crc = crc32(&buf);
    codec::put_u32(&mut buf, crc);
    write_atomic(storage, path, &buf)
}

/// Load the manifest at `path`. `Ok(None)` when the file does not exist
/// (a fresh state dir); hard [`DarError::Corrupt`] on any damage, since
/// atomic swaps mean a broken manifest cannot be benign crash residue.
pub fn load_manifest(storage: &dyn Storage, path: &Path) -> DarResult<Option<Manifest>> {
    if !storage.exists(path) {
        return Ok(None);
    }
    let bytes = storage.read(path)?;
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(DarError::Corrupt(format!(
            "{}: not a manifest",
            path.display()
        )));
    }
    let body = &bytes[..bytes.len() - 4];
    let tail = &bytes[bytes.len() - 4..];
    let want = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(body) != want {
        return Err(DarError::Corrupt(format!(
            "{}: manifest CRC mismatch",
            path.display()
        )));
    }
    let mut c = codec::Cursor::new(&body[MAGIC.len()..]);
    let generation = c.u64()?;
    let incumbent = c.str_()?;
    Ok(Some(Manifest {
        generation,
        incumbent,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RealStorage;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dar_store_m_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_and_missing_is_none() {
        let d = tmpdir("rt");
        let p = d.join("MANIFEST");
        let s = RealStorage;
        assert_eq!(load_manifest(&s, &p).unwrap(), None);
        let m = Manifest {
            generation: 7,
            incumbent: "incumbent_g7.ckpt".to_owned(),
        };
        store_manifest(&s, &p, &m).unwrap();
        assert_eq!(load_manifest(&s, &p).unwrap(), Some(m));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn any_bit_flip_is_a_hard_corrupt_error() {
        let d = tmpdir("flip");
        let p = d.join("MANIFEST");
        let s = RealStorage;
        store_manifest(
            &s,
            &p,
            &Manifest {
                generation: 3,
                incumbent: "x.ckpt".to_owned(),
            },
        )
        .unwrap();
        let golden = std::fs::read(&p).unwrap();
        for byte in 0..golden.len() {
            let mut dirty = golden.clone();
            dirty[byte] ^= 0x10;
            std::fs::write(&p, &dirty).unwrap();
            match load_manifest(&s, &p) {
                Err(DarError::Corrupt(_)) | Err(DarError::InvalidData(_)) => {}
                other => panic!("flip at {byte} gave {other:?}"),
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn truncation_is_a_hard_corrupt_error() {
        let d = tmpdir("trunc");
        let p = d.join("MANIFEST");
        let s = RealStorage;
        store_manifest(
            &s,
            &p,
            &Manifest {
                generation: 1,
                incumbent: "a.ckpt".to_owned(),
            },
        )
        .unwrap();
        let golden = std::fs::read(&p).unwrap();
        for cut in 1..golden.len() {
            std::fs::write(&p, &golden[..cut]).unwrap();
            assert!(load_manifest(&s, &p).is_err(), "cut at {cut} was accepted");
        }
        std::fs::remove_dir_all(&d).ok();
    }
}
