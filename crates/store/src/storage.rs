//! The storage substrate: a small trait over the filesystem operations
//! durability needs, a real implementation with full fsync discipline,
//! and a seeded fault-injecting wrapper for the crash harness.
//!
//! Every mutating operation on [`RealStorage`] is durable when it
//! returns: appends and whole-file writes `fsync` the file, renames are
//! followed by a parent-directory `fsync` by the callers that need the
//! new name durable ([`write_atomic`]). [`FaultyStorage`] wraps the real
//! thing and injects the failure modes crashed writers and sick disks
//! produce — short writes, torn tails, bit flips, `ENOSPC`, failed
//! renames — plus an abort-at-Nth-write crash valve: after `n` mutating
//! operations every further mutation fails (and the `n`-th write may
//! tear to a seeded prefix first), which is exactly what a process
//! killed mid-write leaves behind.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dar_tensor::serial::{save_checkpoint, Checkpoint};
use dar_tensor::{DarError, DarResult};

/// The filesystem surface the durability layer is written against.
/// Implementations must make every mutating call durable before
/// returning `Ok` (or honestly fail); `FaultyStorage` is the one
/// implementation allowed to lie, and only on purpose.
pub trait Storage: Send + Sync {
    /// Append `bytes` to the file at `path` (creating it if absent) and
    /// fsync the file.
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> DarResult<()>;
    /// Create/overwrite the file at `path` with `bytes` and fsync it.
    /// The *name* is not durable until the parent directory is synced.
    fn write_file_sync(&self, path: &Path, bytes: &[u8]) -> DarResult<()>;
    fn read(&self, path: &Path) -> DarResult<Vec<u8>>;
    fn rename(&self, from: &Path, to: &Path) -> DarResult<()>;
    fn remove(&self, path: &Path) -> DarResult<()>;
    fn truncate(&self, path: &Path, len: u64) -> DarResult<()>;
    /// fsync a directory, making renames/creations inside it durable.
    fn sync_dir(&self, dir: &Path) -> DarResult<()>;
    fn create_dir_all(&self, dir: &Path) -> DarResult<()>;
    fn exists(&self, path: &Path) -> bool;
    /// File names (not full paths) inside `dir`.
    fn list(&self, dir: &Path) -> DarResult<Vec<String>>;
}

/// `std::fs` with the fsync discipline the trait demands.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealStorage;

impl Storage for RealStorage {
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> DarResult<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    }

    fn write_file_sync(&self, path: &Path, bytes: &[u8]) -> DarResult<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    }

    fn read(&self, path: &Path) -> DarResult<Vec<u8>> {
        Ok(std::fs::read(path)?)
    }

    fn rename(&self, from: &Path, to: &Path) -> DarResult<()> {
        Ok(std::fs::rename(from, to)?)
    }

    fn remove(&self, path: &Path) -> DarResult<()> {
        Ok(std::fs::remove_file(path)?)
    }

    fn truncate(&self, path: &Path, len: u64) -> DarResult<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()?;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> DarResult<()> {
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> DarResult<()> {
        Ok(std::fs::create_dir_all(dir)?)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> DarResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

/// Seeded schedule of storage faults, counted in *mutating operations*
/// (append, write, rename, truncate, remove) since the wrapper was
/// built. All randomness derives from `seed`, so every failure a test
/// provokes is reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageFaultPlan {
    pub seed: u64,
    /// The op with this index fails `ENOSPC`-style: nothing written.
    pub enospc_at: Option<u64>,
    /// A write op with this index persists only a seeded prefix, then
    /// fails — a short write the caller *sees*.
    pub short_write_at: Option<u64>,
    /// An append op with this index persists only a seeded prefix but
    /// *reports success* — the lying-fsync tear that WAL replay must
    /// absorb by truncating the tail.
    pub torn_tail_at: Option<u64>,
    /// A write op with this index lands with one seeded bit flipped.
    pub bit_flip_at: Option<u64>,
    /// The k-th *rename* (its own counter) fails, source left intact.
    pub fail_rename_at: Option<u64>,
    /// Crash valve: once this many mutating ops have completed, every
    /// further mutation fails with an injected-crash error; the op at
    /// the boundary, if a write, tears to a seeded prefix first. This is
    /// the abort-at-Nth-write sweep's knob.
    pub crash_after_ops: Option<u64>,
}

impl StorageFaultPlan {
    pub fn none() -> Self {
        StorageFaultPlan::default()
    }

    pub fn crash_after(n: u64, seed: u64) -> Self {
        StorageFaultPlan {
            seed,
            crash_after_ops: Some(n),
            ..Default::default()
        }
    }
}

fn injected(kind: &str) -> DarError {
    DarError::Io(std::io::Error::other(format!("{kind} (injected)")))
}

/// Deterministic value in `0..bound` derived from the plan seed and the
/// op index (splitmix64 finalizer).
fn seeded(seed: u64, op: u64, bound: usize) -> usize {
    let mut x = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % bound.max(1) as u64) as usize
}

/// Wraps [`RealStorage`] and fires a [`StorageFaultPlan`]. Also keeps an
/// ordered op log (`"append:wal.log:23"`, `"sync_dir:state"`, …) so
/// tests can assert fsync *ordering*, not just outcomes.
pub struct FaultyStorage {
    inner: RealStorage,
    plan: StorageFaultPlan,
    ops: AtomicU64,
    renames: AtomicU64,
    log: Mutex<Vec<String>>,
}

impl FaultyStorage {
    pub fn new(plan: StorageFaultPlan) -> Self {
        FaultyStorage {
            inner: RealStorage,
            plan,
            ops: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Mutating ops completed or attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// The ordered operation log (op:name[:len]).
    pub fn op_log(&self) -> Vec<String> {
        self.log.lock().unwrap().clone()
    }

    fn note(&self, entry: String) {
        self.log.lock().unwrap().push(entry);
    }

    fn name(path: &Path) -> String {
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string())
    }

    /// Claim the next mutating-op index, applying the crash valve.
    /// Returns `Err` when the plan says this op (or any op after the
    /// crash point) must die outright; `Ok((op, tear))` otherwise, where
    /// `tear` asks a write op to persist only a seeded prefix and fail.
    fn claim(&self, what: &str, path: &Path) -> DarResult<(u64, bool)> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        self.note(format!("{what}:{}", Self::name(path)));
        if let Some(crash) = self.plan.crash_after_ops {
            if op > crash {
                return Err(injected("crashed"));
            }
            if op == crash {
                // The boundary op: a write tears, everything else dies.
                return Ok((op, true));
            }
        }
        if self.plan.enospc_at == Some(op) {
            return Err(injected("no space left on device"));
        }
        Ok((op, false))
    }
}

impl Storage for FaultyStorage {
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> DarResult<()> {
        let (op, crash_tear) = self.claim("append", path)?;
        if crash_tear {
            let keep = seeded(self.plan.seed, op, bytes.len());
            self.inner.append_sync(path, &bytes[..keep]).ok();
            return Err(injected("crashed"));
        }
        if self.plan.short_write_at == Some(op) {
            let keep = seeded(self.plan.seed, op, bytes.len());
            self.inner.append_sync(path, &bytes[..keep]).ok();
            return Err(injected("short write"));
        }
        if self.plan.torn_tail_at == Some(op) {
            let keep = seeded(self.plan.seed, op, bytes.len());
            return self.inner.append_sync(path, &bytes[..keep]);
        }
        if self.plan.bit_flip_at == Some(op) && !bytes.is_empty() {
            let mut flipped = bytes.to_vec();
            let byte = seeded(self.plan.seed, op, flipped.len());
            flipped[byte] ^= 1 << seeded(self.plan.seed ^ 0xB17, op, 8);
            return self.inner.append_sync(path, &flipped);
        }
        self.inner.append_sync(path, bytes)
    }

    fn write_file_sync(&self, path: &Path, bytes: &[u8]) -> DarResult<()> {
        let (op, crash_tear) = self.claim("write_file", path)?;
        if crash_tear {
            let keep = seeded(self.plan.seed, op, bytes.len());
            self.inner.write_file_sync(path, &bytes[..keep]).ok();
            return Err(injected("crashed"));
        }
        if self.plan.short_write_at == Some(op) {
            let keep = seeded(self.plan.seed, op, bytes.len());
            self.inner.write_file_sync(path, &bytes[..keep]).ok();
            return Err(injected("short write"));
        }
        if self.plan.bit_flip_at == Some(op) && !bytes.is_empty() {
            let mut flipped = bytes.to_vec();
            let byte = seeded(self.plan.seed, op, flipped.len());
            flipped[byte] ^= 1 << seeded(self.plan.seed ^ 0xB17, op, 8);
            return self.inner.write_file_sync(path, &flipped);
        }
        self.inner.write_file_sync(path, bytes)
    }

    fn read(&self, path: &Path) -> DarResult<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> DarResult<()> {
        let (_, crash) = self.claim("rename", to)?;
        if crash {
            return Err(injected("crashed"));
        }
        let k = self.renames.fetch_add(1, Ordering::SeqCst);
        if self.plan.fail_rename_at == Some(k) {
            return Err(injected("rename failed"));
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> DarResult<()> {
        let (_, crash) = self.claim("remove", path)?;
        if crash {
            return Err(injected("crashed"));
        }
        self.inner.remove(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> DarResult<()> {
        let (_, crash) = self.claim("truncate", path)?;
        if crash {
            return Err(injected("crashed"));
        }
        self.inner.truncate(path, len)
    }

    fn sync_dir(&self, dir: &Path) -> DarResult<()> {
        self.note(format!("sync_dir:{}", Self::name(dir)));
        self.inner.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> DarResult<()> {
        self.inner.create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> DarResult<Vec<String>> {
        self.inner.list(dir)
    }
}

/// Per-process unique temp-file counter: two threads writing the same
/// destination must never share a temp name (pid alone is not enough).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A collision-free sibling temp path for `path`:
/// `<stem>.tmp.<pid>.<counter>`.
pub fn unique_tmp(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!("tmp.{}.{n}", std::process::id()))
}

/// Atomically replace the file at `path` with `bytes`, with full fsync
/// discipline: temp write (fsynced) → rename → parent-directory fsync.
/// On any failure the destination is untouched and the temp file is
/// cleaned up best-effort — a partial file is never visible at `path`.
pub fn write_atomic(storage: &dyn Storage, path: &Path, bytes: &[u8]) -> DarResult<()> {
    let tmp = unique_tmp(path);
    let result = (|| {
        storage.write_file_sync(&tmp, bytes)?;
        storage.rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            storage.sync_dir(dir)?;
        }
        Ok(())
    })();
    if result.is_err() {
        storage.remove(&tmp).ok();
    }
    result
}

/// [`write_atomic`] for a checkpoint: serialize (format v2, CRC footer)
/// in memory, then land it atomically. The storage-trait twin of
/// `dar_tensor::serial::save_checkpoint_path`, so the crash harness can
/// drive checkpoint saves through injected faults.
pub fn save_checkpoint_atomic(
    storage: &dyn Storage,
    path: &Path,
    ckpt: &Checkpoint,
) -> DarResult<()> {
    let mut buf = Vec::new();
    save_checkpoint(&mut buf, ckpt)?;
    write_atomic(storage, path, &buf)
}

/// Remove orphaned `*.tmp.*` files a crashed writer left in `dir`.
/// Returns how many were swept. Called during recovery.
pub fn sweep_orphan_tmps(storage: &dyn Storage, dir: &Path) -> DarResult<u64> {
    let mut swept = 0;
    for name in storage.list(dir)? {
        if name.contains(".tmp.") {
            storage.remove(&dir.join(&name)).ok();
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dar_store_s_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_storage_appends_and_truncates() {
        let d = tmpdir("real");
        let f = d.join("a.log");
        let s = RealStorage;
        s.append_sync(&f, b"hello").unwrap();
        s.append_sync(&f, b" world").unwrap();
        assert_eq!(s.read(&f).unwrap(), b"hello world");
        s.truncate(&f, 5).unwrap();
        assert_eq!(s.read(&f).unwrap(), b"hello");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn write_atomic_orders_sync_after_rename_and_leaves_no_tmp() {
        let d = tmpdir("order");
        let s = FaultyStorage::new(StorageFaultPlan::none());
        write_atomic(&s, &d.join("m.bin"), b"payload").unwrap();
        let log = s.op_log();
        let wr = log
            .iter()
            .position(|e| e.starts_with("write_file:"))
            .unwrap();
        let rn = log.iter().position(|e| e.starts_with("rename:")).unwrap();
        let sd = log.iter().position(|e| e.starts_with("sync_dir:")).unwrap();
        assert!(wr < rn && rn < sd, "fsync discipline violated: {log:?}");
        assert!(
            !s.list(&d).unwrap().iter().any(|n| n.contains(".tmp.")),
            "temp file left behind"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn enospc_and_rename_failures_never_touch_the_destination() {
        let d = tmpdir("faults");
        let dest = d.join("m.bin");
        RealStorage.write_file_sync(&dest, b"old").unwrap();

        let s = FaultyStorage::new(StorageFaultPlan {
            enospc_at: Some(0),
            ..Default::default()
        });
        assert!(matches!(
            write_atomic(&s, &dest, b"new"),
            Err(DarError::Io(_))
        ));
        assert_eq!(RealStorage.read(&dest).unwrap(), b"old");

        let s = FaultyStorage::new(StorageFaultPlan {
            fail_rename_at: Some(0),
            ..Default::default()
        });
        assert!(matches!(
            write_atomic(&s, &dest, b"new"),
            Err(DarError::Io(_))
        ));
        assert_eq!(RealStorage.read(&dest).unwrap(), b"old");
        assert!(
            !RealStorage
                .list(&d)
                .unwrap()
                .iter()
                .any(|n| n.contains(".tmp.")),
            "failed rename leaked its temp file"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn crash_valve_fails_everything_past_the_boundary() {
        let d = tmpdir("crash");
        let s = FaultyStorage::new(StorageFaultPlan::crash_after(1, 7));
        let f = d.join("w.log");
        s.append_sync(&f, b"first").unwrap();
        assert!(s.append_sync(&f, b"second").is_err(), "boundary op dies");
        assert!(s.append_sync(&f, b"third").is_err(), "post-crash op dies");
        let len = RealStorage.read(&f).unwrap().len();
        assert!(len >= 5 && len < 11, "boundary tear kept {len} bytes");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn orphan_sweep_removes_only_tmp_droppings() {
        let d = tmpdir("sweep");
        let s = RealStorage;
        s.write_file_sync(&d.join("keep.ckpt"), b"k").unwrap();
        s.write_file_sync(&d.join("a.tmp.123.0"), b"x").unwrap();
        s.write_file_sync(&d.join("b.tmp.123.7"), b"y").unwrap();
        assert_eq!(sweep_orphan_tmps(&s, &d).unwrap(), 2);
        assert_eq!(s.list(&d).unwrap(), vec!["keep.ckpt".to_string()]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn unique_tmp_never_collides_across_calls() {
        let p = Path::new("/x/y/model.ckpt");
        let a = unique_tmp(p);
        let b = unique_tmp(p);
        assert_ne!(a, b, "per-call suffix must be unique");
        assert!(a.to_string_lossy().contains(".tmp."));
    }
}
