//! `dar-store`: the workspace's crash-consistent durability layer
//! (DESIGN.md §15).
//!
//! Everything long-lived that the train-while-serve loop decides —
//! promotion and rollback verdicts, candidate round numbers, the feed
//! cursor, the identity of the incumbent checkpoint — used to live in
//! process memory, so a SIGKILL silently forgot promotions and replayed
//! trainer rounds. This crate gives those decisions a disk contract:
//!
//! * a **write-ahead log** ([`Wal`]) of CRC-framed records with full
//!   fsync discipline (file *and* parent directory), replayed with
//!   torn-tail tolerance: the log is truncated at the first bad frame
//!   and the truncation itself is journaled;
//! * a **monotonic-generation manifest** ([`Manifest`]) pointing at the
//!   durable incumbent checkpoint, swapped atomically
//!   (temp-write → rename → directory fsync);
//! * a **fault-injectable storage substrate** ([`Storage`],
//!   [`RealStorage`], [`FaultyStorage`]): seeded short writes, torn
//!   tails, bit flips, ENOSPC, failed renames, and an
//!   abort-at-Nth-write crash valve that the chaos harness in
//!   `tests/crash_recovery.rs` sweeps exhaustively;
//! * the **promotion state coordinator** ([`DurableState`]) the online
//!   loop threads its decisions through, giving exactly-once promotion
//!   semantics across restarts (DESIGN.md §15 has the argument).
//!
//! The commit point of a promotion is its WAL record: the incumbent
//! checkpoint bytes are made durable *before* the record is appended,
//! and the manifest swap happens *after*, so recovery can always roll a
//! journaled promotion forward and an unjournaled one simply never
//! happened. Recovery emits typed [`dar_obs::ObsEvent`]s
//! (`recovery_started`, `wal_truncated_tail`, `recovery_complete`) into
//! the byte-deterministic journal section.

pub mod manifest;
pub mod state;
pub mod storage;
pub mod wal;

pub use manifest::{load_manifest, store_manifest, Manifest};
pub use state::{DurableState, Recovery, StateRecord, MANIFEST_FILE, WAL_FILE};
pub use storage::{
    save_checkpoint_atomic, sweep_orphan_tmps, write_atomic, FaultyStorage, RealStorage, Storage,
    StorageFaultPlan,
};
pub use wal::{Wal, WalReplay};
