//! CRC-framed write-ahead log with torn-tail-tolerant replay.
//!
//! # File format (little-endian)
//!
//! ```text
//! magic `DARWAL01` (8 bytes)
//! frame*: len u32 · crc u32 (IEEE CRC-32 of payload) · payload bytes
//! ```
//!
//! Appends are a single `append_sync` (write + fsync) per frame, so a
//! crash can only damage the *last* frame: either the frame is whole
//! and CRC-clean (committed) or the file ends in a torn prefix of it.
//! Replay walks frames until the first bad one — zero/oversized length,
//! short payload, or CRC mismatch — and reports the byte offset of the
//! damage; [`Wal::open`] then truncates the file there so the log is
//! clean for subsequent appends. Nothing before the tear is ever
//! touched, which is the whole crash-consistency argument: a record is
//! committed exactly when its frame is durable and whole.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dar_tensor::{DarError, DarResult};

use crate::storage::Storage;

const MAGIC: &[u8; 8] = b"DARWAL01";

/// Largest admissible frame payload (1 MiB) — state records are tens of
/// bytes, so anything bigger is corruption, not data.
pub const MAX_FRAME: usize = 1 << 20;

/// IEEE CRC-32 (reflected, poly 0xEDB88320) — same polynomial as the
/// checkpoint footer in `dar_tensor::serial`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc ^ 0xFFFF_FFFF
}

/// What replay found: the committed payloads, where the clean prefix
/// ends, and how many trailing bytes were torn garbage.
#[derive(Debug)]
pub struct WalReplay {
    /// Payloads of every whole, CRC-clean frame, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset of the end of the clean prefix (truncation point).
    pub clean_len: u64,
    /// Bytes past `clean_len` that were discarded as a torn tail.
    pub torn_bytes: u64,
}

/// An append-only handle on one WAL file.
pub struct Wal {
    storage: Arc<dyn Storage>,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path`, replay it, and heal
    /// any torn tail by truncating at the first bad frame. Returns the
    /// handle plus everything the clean prefix contained.
    ///
    /// A file shorter than the magic is treated as a torn *creation*
    /// (the process died while writing the very first bytes) as long as
    /// what is there is a prefix of the magic; it is rewritten. A file
    /// whose first 8 bytes are present but wrong is not a WAL at all
    /// and is a hard [`DarError::Corrupt`].
    pub fn open(
        storage: Arc<dyn Storage>,
        path: impl Into<PathBuf>,
    ) -> DarResult<(Self, WalReplay)> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            storage.create_dir_all(dir)?;
        }
        let mut replay = WalReplay {
            records: Vec::new(),
            clean_len: MAGIC.len() as u64,
            torn_bytes: 0,
        };
        if !storage.exists(&path) {
            storage.append_sync(&path, MAGIC)?;
            Self::sync_parent(&*storage, &path)?;
            return Ok((Wal { storage, path }, replay));
        }

        let bytes = storage.read(&path)?;
        if bytes.len() < MAGIC.len() {
            if MAGIC.starts_with(&bytes[..]) {
                // Torn creation: rewrite the header.
                storage.truncate(&path, 0)?;
                storage.append_sync(&path, MAGIC)?;
                Self::sync_parent(&*storage, &path)?;
                replay.torn_bytes = bytes.len() as u64;
                return Ok((Wal { storage, path }, replay));
            }
            return Err(DarError::Corrupt(format!(
                "{}: {} bytes that are not a WAL header",
                path.display(),
                bytes.len()
            )));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(DarError::Corrupt(format!(
                "{}: bad WAL magic",
                path.display()
            )));
        }

        let mut pos = MAGIC.len();
        loop {
            if pos == bytes.len() {
                break; // clean end
            }
            let Some((payload, next)) = Self::frame_at(&bytes, pos) else {
                break; // torn or corrupt tail starts at `pos`
            };
            replay.records.push(payload);
            pos = next;
        }
        replay.clean_len = pos as u64;
        replay.torn_bytes = (bytes.len() - pos) as u64;
        if replay.torn_bytes > 0 {
            storage.truncate(&path, replay.clean_len)?;
        }
        Ok((Wal { storage, path }, replay))
    }

    /// Decode the frame starting at `pos`; `None` if it is torn or
    /// CRC-dirty (i.e. the clean prefix ends at `pos`).
    fn frame_at(bytes: &[u8], pos: usize) -> Option<(Vec<u8>, usize)> {
        let header_end = pos.checked_add(8)?;
        if header_end > bytes.len() {
            return None;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len == 0 || len > MAX_FRAME {
            return None;
        }
        let want_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let end = header_end.checked_add(len)?;
        if end > bytes.len() {
            return None;
        }
        let payload = &bytes[header_end..end];
        if crc32(payload) != want_crc {
            return None;
        }
        Some((payload.to_vec(), end))
    }

    fn sync_parent(storage: &dyn Storage, path: &Path) -> DarResult<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            storage.sync_dir(dir)?;
        }
        Ok(())
    }

    /// Append one record as a framed, fsynced write. When this returns
    /// `Ok` the record is committed: replay after any later crash will
    /// yield it.
    pub fn append(&self, payload: &[u8]) -> DarResult<()> {
        if payload.is_empty() || payload.len() > MAX_FRAME {
            return Err(DarError::InvalidData(format!(
                "WAL payload of {} bytes (admissible 1..={MAX_FRAME})",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.storage.append_sync(&self.path, &frame)
    }

    /// Append many records as one framed write + single fsync — the
    /// batched path for bulk writers and the recovery replay bench
    /// (`dar-loop --wal-pad`). Atomicity is per *call*, not per record:
    /// a crash mid-call can tear the batch at any frame boundary (or
    /// mid-frame), and replay keeps exactly the clean prefix.
    pub fn append_many<I, B>(&self, payloads: I) -> DarResult<()>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let mut buf = Vec::new();
        for p in payloads {
            let p = p.as_ref();
            if p.is_empty() || p.len() > MAX_FRAME {
                return Err(DarError::InvalidData(format!(
                    "WAL payload of {} bytes (admissible 1..={MAX_FRAME})",
                    p.len()
                )));
            }
            buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(p).to_le_bytes());
            buf.extend_from_slice(p);
        }
        if buf.is_empty() {
            return Ok(());
        }
        self.storage.append_sync(&self.path, &buf)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RealStorage;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dar_store_w_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn storage() -> Arc<dyn Storage> {
        Arc::new(RealStorage)
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_then_replay_round_trips() {
        let d = tmpdir("rt");
        let p = d.join("w.wal");
        let (wal, r) = Wal::open(storage(), &p).unwrap();
        assert!(r.records.is_empty());
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        drop(wal);
        let (_, r) = Wal::open(storage(), &p).unwrap();
        assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(r.torn_bytes, 0);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let d = tmpdir("tear");
        let p = d.join("w.wal");
        let (wal, _) = Wal::open(storage(), &p).unwrap();
        wal.append(b"committed").unwrap();
        drop(wal);
        // Simulate a crash mid-append: garbage half-frame at the tail.
        RealStorage.append_sync(&p, &[9, 0, 0, 0, 1, 2]).unwrap();
        let (wal, r) = Wal::open(storage(), &p).unwrap();
        assert_eq!(r.records, vec![b"committed".to_vec()]);
        assert_eq!(r.torn_bytes, 6);
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, r) = Wal::open(storage(), &p).unwrap();
        assert_eq!(r.records, vec![b"committed".to_vec(), b"after".to_vec()]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn every_tear_offset_preserves_the_committed_prefix() {
        // Golden file with 3 records, then for every possible truncation
        // length, plus a bit-flip at every byte of the tail frame: replay
        // must never lose a whole earlier record or invent one.
        let d = tmpdir("sweep");
        let p = d.join("w.wal");
        let (wal, _) = Wal::open(storage(), &p).unwrap();
        for r in 0..3u8 {
            wal.append(&[r; 16]).unwrap();
        }
        drop(wal);
        let golden = std::fs::read(&p).unwrap();
        for cut in 0..golden.len() {
            let q = d.join(format!("cut{cut}.wal"));
            std::fs::write(&q, &golden[..cut]).unwrap();
            match Wal::open(storage(), &q) {
                Ok((_, r)) => {
                    let whole = cut.saturating_sub(8) / 24; // frames fully inside the cut
                    assert_eq!(r.records.len(), whole.min(3), "cut at {cut}");
                    for (i, rec) in r.records.iter().enumerate() {
                        assert_eq!(rec, &vec![i as u8; 16], "cut at {cut}");
                    }
                }
                Err(_) => assert!(cut < 8, "hard error only for a non-WAL header"),
            }
        }
        // Bit flips inside the last frame: first two records must survive.
        for byte in (golden.len() - 24)..golden.len() {
            let mut dirty = golden.clone();
            dirty[byte] ^= 0x40;
            let q = d.join(format!("flip{byte}.wal"));
            std::fs::write(&q, &dirty).unwrap();
            let (_, r) = Wal::open(storage(), &q).unwrap();
            assert!(
                r.records.len() >= 2,
                "flip at {byte} lost a committed record"
            );
            assert_eq!(&r.records[0], &vec![0u8; 16]);
            assert_eq!(&r.records[1], &vec![1u8; 16]);
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn append_many_replays_like_individual_appends() {
        let d = tmpdir("many");
        let p = d.join("w.wal");
        let (wal, _) = Wal::open(storage(), &p).unwrap();
        wal.append_many((0..100u32).map(|i| i.to_le_bytes().to_vec()))
            .unwrap();
        drop(wal);
        let (_, r) = Wal::open(storage(), &p).unwrap();
        assert_eq!(r.records.len(), 100);
        assert_eq!(r.records[41], 41u32.to_le_bytes().to_vec());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn non_wal_file_is_a_hard_corrupt_error() {
        let d = tmpdir("notwal");
        let p = d.join("w.wal");
        std::fs::write(&p, b"definitely not a wal").unwrap();
        assert!(matches!(
            Wal::open(storage(), &p),
            Err(DarError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_creation_is_healed() {
        let d = tmpdir("torncreate");
        let p = d.join("w.wal");
        std::fs::write(&p, &MAGIC[..3]).unwrap();
        let (wal, r) = Wal::open(storage(), &p).unwrap();
        assert_eq!(r.torn_bytes, 3);
        wal.append(b"ok").unwrap();
        drop(wal);
        let (_, r) = Wal::open(storage(), &p).unwrap();
        assert_eq!(r.records, vec![b"ok".to_vec()]);
        std::fs::remove_dir_all(&d).ok();
    }
}
