//! `dar-bench`: the experiment harness. One binary per table/figure of the
//! paper (see DESIGN.md §5); this library holds the shared plumbing —
//! profiles, per-aspect configurations, model construction, seed averaging,
//! and table formatting.
//!
//! Every binary honours the `DAR_PROFILE` environment variable:
//!
//! * `quick`    — smallest datasets/epochs; smoke-test the full pipeline.
//! * `standard` — the default; balances fidelity and CPU wall-clock.
//! * `full`     — paper-scaled synthetic corpora; slowest, best fidelity.

use dar_core::prelude::*;
use dar_core::Rng;

/// Experiment scale profile.
#[derive(Debug, Clone)]
pub struct Profile {
    pub name: &'static str,
    /// Multiplier on the default split sizes of `SynthConfig`.
    pub scale: f32,
    pub epochs: usize,
    pub pretrain_epochs: usize,
    pub batch: usize,
    pub seeds: Vec<u64>,
}

impl Profile {
    /// Sized so the cooperative game gets ~200 optimizer steps — the
    /// minimum at which the generator reliably escapes the empty-mask
    /// local optimum on this corpus scale.
    pub fn quick() -> Self {
        Profile {
            name: "quick",
            scale: 0.4,
            epochs: 10,
            pretrain_epochs: 6,
            batch: 32,
            seeds: vec![17],
        }
    }

    pub fn standard() -> Self {
        Profile {
            name: "standard",
            scale: 0.6,
            epochs: 14,
            pretrain_epochs: 6,
            batch: 32,
            seeds: vec![17, 43],
        }
    }

    pub fn full() -> Self {
        Profile {
            name: "full",
            scale: 1.0,
            epochs: 20,
            pretrain_epochs: 8,
            batch: 64,
            seeds: vec![17, 43, 71],
        }
    }

    /// Read `DAR_PROFILE` (default `standard`).
    pub fn from_env() -> Self {
        match std::env::var("DAR_PROFILE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("full") => Self::full(),
            Ok("standard") | Err(_) => Self::standard(),
            Ok(other) => {
                eprintln!("unknown DAR_PROFILE '{other}', using standard");
                Self::standard()
            }
        }
    }

    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch,
            patience: Some((self.epochs / 2).max(3)),
            ..Default::default()
        }
    }
}

/// Write the observability snapshot of a finished experiment binary to
/// `results/obs_<run>.json`. Best-effort: a snapshot failure must never
/// fail the experiment that produced the actual numbers.
pub fn write_obs(run: &str) {
    match dar_obs::write_snapshot(std::path::Path::new("results"), run) {
        Ok(p) => println!("obs snapshot: {}", p.display()),
        Err(e) => eprintln!("obs snapshot failed: {e}"),
    }
}

/// Target rationale sparsity per aspect — set near the human-annotation
/// sparsity (Table IX), as the paper does for its main tables.
pub fn aspect_alpha(aspect: Aspect) -> f32 {
    match aspect {
        Aspect::Appearance => 0.19,
        Aspect::Aroma => 0.16,
        Aspect::Palate => 0.13,
        Aspect::Location => 0.10,
        Aspect::Service => 0.12,
        Aspect::Cleanliness => 0.10,
    }
}

/// Generate the aspect's dataset at the profile's scale.
pub fn dataset(aspect: Aspect, profile: &Profile, seed: u64) -> AspectDataset {
    let mut rng = dar_core::rng(seed);
    match aspect {
        Aspect::Appearance | Aspect::Aroma | Aspect::Palate => {
            SynBeer::generate(&SynthConfig::beer(aspect).scaled(profile.scale), &mut rng)
        }
        _ => SynHotel::generate(&SynthConfig::hotel(aspect).scaled(profile.scale), &mut rng),
    }
}

/// Model registry: construct a model by its paper name.
pub fn build_model(
    name: &str,
    cfg: &RationaleConfig,
    emb: &SharedEmbedding,
    data: &AspectDataset,
    pretrain_epochs: usize,
    rng: &mut Rng,
) -> Box<dyn RationaleModel> {
    let ml = pretrain::max_len(data);
    match name {
        "RNP" => Box::new(Rnp::new(cfg, emb, ml, rng)),
        "DAR" => {
            let disc = pretrain::full_text_predictor(cfg, emb, data, pretrain_epochs, rng);
            Box::new(Dar::new(cfg, emb, disc, ml, rng))
        }
        "A2R" => Box::new(A2r::new(cfg, emb, ml, rng)),
        "DMR" => Box::new(Dmr::new(cfg, emb, ml, rng)),
        "Inter_RAT" => Box::new(InterRat::new(cfg, emb, ml, rng)),
        "CAR" => Box::new(Car::new(cfg, emb, ml, rng)),
        "3PLAYER" => Box::new(ThreePlayer::new(cfg, emb, ml, rng)),
        "VIB" => Box::new(Vib::new(cfg, emb, ml, rng)),
        other => panic!("unknown model '{other}'"),
    }
}

/// One full (dataset, model) run for one seed.
pub fn run_once(
    model_name: &str,
    aspect: Aspect,
    cfg_base: &RationaleConfig,
    profile: &Profile,
    seed: u64,
) -> TrainReport {
    let _span = dar_obs::span("bench_run");
    let data = dataset(aspect, profile, seed);
    let cfg = RationaleConfig {
        sparsity: aspect_alpha(aspect),
        ..*cfg_base
    };
    let mut rng = dar_core::rng(seed.wrapping_mul(2654435761).wrapping_add(7));
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let mut model = build_model(
        model_name,
        &cfg,
        &emb,
        &data,
        profile.pretrain_epochs,
        &mut rng,
    );
    Trainer::new(profile.train_config()).fit(model.as_mut(), &data, &mut rng)
}

/// Metrics averaged over seeds.
#[derive(Debug, Clone, Copy)]
pub struct MeanMetrics {
    pub sparsity: f32,
    pub acc: Option<f32>,
    pub full_acc: Option<f32>,
    pub precision: f32,
    pub recall: f32,
    pub f1: f32,
    pub runs: usize,
}

impl MeanMetrics {
    pub fn of(metrics: &[RationaleMetrics]) -> Self {
        assert!(!metrics.is_empty(), "no runs to average");
        let n = metrics.len() as f32;
        let avg_opt = |f: &dyn Fn(&RationaleMetrics) -> Option<f32>| {
            let vals: Vec<f32> = metrics.iter().filter_map(f).collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f32>() / vals.len() as f32)
            }
        };
        MeanMetrics {
            sparsity: metrics.iter().map(|m| m.sparsity).sum::<f32>() / n,
            acc: avg_opt(&|m| m.acc),
            full_acc: avg_opt(&|m| m.full_text_acc),
            precision: metrics.iter().map(|m| m.precision).sum::<f32>() / n,
            recall: metrics.iter().map(|m| m.recall).sum::<f32>() / n,
            f1: metrics.iter().map(|m| m.f1).sum::<f32>() / n,
            runs: metrics.len(),
        }
    }

    /// `S Acc P R F1` row in percent, `N/A` for missing accuracy.
    pub fn row(&self) -> String {
        let acc = self
            .acc
            .map_or(" N/A".to_owned(), |a| format!("{:5.1}", a * 100.0));
        format!(
            "{:5.1} {acc} {:5.1} {:5.1} {:5.1}",
            self.sparsity * 100.0,
            self.precision * 100.0,
            self.recall * 100.0,
            self.f1 * 100.0
        )
    }
}

/// Run a model over all profile seeds and average.
///
/// Seeds fan out across the `dar-par` pool: each run is fully independent
/// and thread-confined (tensors never cross threads), and results come
/// back in seed order, so the mean is identical to the serial sweep.
pub fn run_mean(
    model_name: &str,
    aspect: Aspect,
    cfg: &RationaleConfig,
    profile: &Profile,
) -> MeanMetrics {
    let metrics: Vec<RationaleMetrics> = dar_par::run_shards(profile.seeds.len(), |i| {
        run_once(model_name, aspect, cfg, profile, profile.seeds[i]).test
    });
    MeanMetrics::of(&metrics)
}

/// Print the standard table header.
pub fn print_header(title: &str, profile: &Profile) {
    println!("== {title} ==");
    println!(
        "(profile: {}, scale {:.2}, {} epochs, seeds {:?})",
        profile.name, profile.scale, profile.epochs, profile.seeds
    );
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "method", "S", "Acc", "P", "R", "F1"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_from_env_default() {
        // No env var in tests: default is standard.
        std::env::remove_var("DAR_PROFILE");
        assert_eq!(Profile::from_env().name, "standard");
    }

    #[test]
    fn alphas_track_table_ix_ordering() {
        assert!(aspect_alpha(Aspect::Appearance) > aspect_alpha(Aspect::Palate));
        assert!(aspect_alpha(Aspect::Service) > aspect_alpha(Aspect::Location));
    }

    #[test]
    fn mean_metrics_averages() {
        let a = RationaleMetrics {
            precision: 0.4,
            recall: 0.6,
            f1: 0.48,
            sparsity: 0.1,
            acc: Some(0.8),
            full_text_acc: None,
        };
        let b = RationaleMetrics {
            precision: 0.6,
            acc: Some(0.9),
            ..a
        };
        let m = MeanMetrics::of(&[a, b]);
        assert!((m.precision - 0.5).abs() < 1e-6);
        assert_eq!(m.acc, Some(0.85));
        assert_eq!(m.full_acc, None);
        assert_eq!(m.runs, 2);
    }

    #[test]
    fn registry_knows_all_paper_models() {
        let profile = Profile::quick();
        let data = dataset(Aspect::Palate, &profile, 1);
        let cfg = RationaleConfig {
            emb_dim: 16,
            hidden: 12,
            ..Default::default()
        };
        let mut rng = dar_core::rng(2);
        let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
        for name in [
            "RNP",
            "DAR",
            "A2R",
            "DMR",
            "Inter_RAT",
            "CAR",
            "3PLAYER",
            "VIB",
        ] {
            let m = build_model(name, &cfg, &emb, &data, 1, &mut rng);
            assert_eq!(m.name(), name);
        }
    }
}
