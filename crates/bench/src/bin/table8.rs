//! Table VIII: the **skewed generator** synthetic setting on
//! SynBeer-Palate. The generator is pretrained to leak the label through
//! the first token's selection until its "classifier accuracy" exceeds a
//! threshold; RNP then exploits the leak while DAR recovers.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin table8
//! ```

use dar_bench::{aspect_alpha, dataset, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    let aspect = Aspect::Palate;
    println!("== Table VIII — skewed generator on SynBeer-Palate ==");
    println!("(profile: {}, seeds {:?})", profile.name, profile.seeds);
    println!(
        "{:<10} {:<6} {:>8} {:>5} {:>6} {:>6} {:>6} {:>6}",
        "setting", "model", "Pre_acc", "S", "Acc", "P", "R", "F1"
    );

    for threshold in [0.60f32, 0.65, 0.70, 0.75] {
        for method in ["RNP", "DAR"] {
            let mut rows = Vec::new();
            let mut pre_accs = Vec::new();
            for &seed in &profile.seeds {
                let (report, pre_acc) = run_skewed_gen(method, aspect, threshold, &profile, seed);
                rows.push(report.test);
                pre_accs.push(pre_acc);
            }
            let m = dar_bench::MeanMetrics::of(&rows);
            let pre = pre_accs.iter().sum::<f32>() / pre_accs.len() as f32;
            println!(
                "skew{:<6.1} {:<6} {:>8.1} {:>5.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                threshold * 100.0,
                method,
                pre * 100.0,
                m.sparsity * 100.0,
                m.acc.map(|a| a * 100.0).unwrap_or(f32::NAN),
                m.precision * 100.0,
                m.recall * 100.0,
                m.f1 * 100.0
            );
        }
    }
    println!("\npaper shape: RNP's F1 falls off a cliff past skew70 (10.8 → 8.8)");
    println!("while DAR degrades gracefully (51.2 → 49.7).");
}

fn run_skewed_gen(
    method: &str,
    aspect: Aspect,
    threshold: f32,
    profile: &Profile,
    seed: u64,
) -> (TrainReport, f32) {
    let data = dataset(aspect, profile, seed);
    let cfg = RationaleConfig {
        sparsity: aspect_alpha(aspect),
        ..Default::default()
    };
    let mut rng = dar_core::rng(seed + 97);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);
    let (gen, pre_acc) = pretrain::skewed_generator(&cfg, &emb, &data, threshold, &mut rng);
    let mut model: Box<dyn RationaleModel> = match method {
        "RNP" => {
            let mut rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
            rnp.set_generator(gen);
            Box::new(rnp)
        }
        "DAR" => {
            let disc =
                pretrain::full_text_predictor(&cfg, &emb, &data, profile.pretrain_epochs, &mut rng);
            let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
            dar.set_generator(gen);
            Box::new(dar)
        }
        other => panic!("unexpected method {other}"),
    };
    (
        Trainer::new(profile.train_config()).fit(model.as_mut(), &data, &mut rng),
        pre_acc,
    )
}
