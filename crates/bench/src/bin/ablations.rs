//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! 1. frozen vs co-trained discriminator (the DAR-vs-DMR-family argument);
//! 2. the discriminative-loss weight of Eq. (6);
//! 3. straight-through vs soft Gumbel masks;
//! 4. decorrelated vs raw (correlated) Beer labels.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin ablations
//! ```

use dar_bench::{aspect_alpha, dataset, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    let aspect = Aspect::Aroma;
    let seed = profile.seeds[0];
    println!(
        "== Ablations on SynBeer-{} (profile {}, seed {seed}) ==\n",
        aspect.name(),
        profile.name
    );

    // ------------------------------------------------------------------
    // 1. Frozen vs co-trained discriminator.
    // ------------------------------------------------------------------
    println!("[1] frozen vs co-trained discriminator");
    let cfg = RationaleConfig {
        sparsity: aspect_alpha(aspect),
        ..Default::default()
    };
    let frozen = dar_bench::run_once("DAR", aspect, &cfg, &profile, seed);
    // Co-trained: DMR has exactly that structure (full-text module trained
    // jointly); compare against it plus plain RNP as the no-alignment
    // floor.
    let cotrained = dar_bench::run_once("DMR", aspect, &cfg, &profile, seed);
    let none = dar_bench::run_once("RNP", aspect, &cfg, &profile, seed);
    println!(
        "  DAR  (frozen disc)     F1 {:>5.1}",
        frozen.test.f1 * 100.0
    );
    println!(
        "  DMR  (co-trained disc) F1 {:>5.1}",
        cotrained.test.f1 * 100.0
    );
    println!(
        "  RNP  (no alignment)    F1 {:>5.1}\n",
        none.test.f1 * 100.0
    );

    // ------------------------------------------------------------------
    // 2. Discriminative-loss weight sweep.
    // ------------------------------------------------------------------
    println!("[2] Eq.(6) alignment weight sweep");
    for w in [0.0f32, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let cfg = RationaleConfig {
            aux_weight: w,
            sparsity: aspect_alpha(aspect),
            ..Default::default()
        };
        let rep = dar_bench::run_once("DAR", aspect, &cfg, &profile, seed);
        println!(
            "  w={w:<5} F1 {:>5.1}  full-text acc {:>5.1}",
            rep.test.f1 * 100.0,
            rep.test.full_text_acc.unwrap_or(0.0) * 100.0
        );
    }
    println!("  (w=0 reduces DAR to RNP; the paper uses w=1)\n");

    // ------------------------------------------------------------------
    // 3. Gumbel temperature sweep (sampling regime).
    // ------------------------------------------------------------------
    println!("[3] Gumbel-softmax temperature");
    for tau in [0.3f32, 0.7, 1.5, 3.0] {
        let cfg = RationaleConfig {
            tau,
            sparsity: aspect_alpha(aspect),
            ..Default::default()
        };
        let rep = dar_bench::run_once("DAR", aspect, &cfg, &profile, seed);
        println!("  tau={tau:<4} F1 {:>5.1}", rep.test.f1 * 100.0);
    }
    println!();

    // ------------------------------------------------------------------
    // 4. Decorrelated vs raw labels (why Lei et al.'s subsets matter).
    // ------------------------------------------------------------------
    println!("[4] decorrelated vs raw (correlated) labels");
    for (label, corr) in [
        ("decorrelated (paper)", 0.0f32),
        ("raw-style corr=0.7", 0.7),
    ] {
        let mut rng = dar_core::rng(seed);
        let dcfg = SynthConfig {
            correlation: corr,
            ..SynthConfig::beer(aspect)
        };
        let data = SynBeer::generate(&dcfg.scaled(profile.scale), &mut rng);
        let cfg = RationaleConfig {
            sparsity: aspect_alpha(aspect),
            ..Default::default()
        };
        let mut rng2 = dar_core::rng(seed + 3);
        let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng2);
        let mut model =
            dar_bench::build_model("RNP", &cfg, &emb, &data, profile.pretrain_epochs, &mut rng2);
        let rep = Trainer::new(profile.train_config()).fit(model.as_mut(), &data, &mut rng2);
        println!(
            "  RNP on {label:<22} F1 {:>5.1} (precision {:>5.1})",
            rep.test.f1 * 100.0,
            rep.test.precision * 100.0
        );
    }
    println!("  (correlated aspects make other aspects' sentiment words predictive,");
    println!("   dragging precision down — the reason the paper uses decorrelated subsets)");
    let _ = dataset(aspect, &profile, seed); // keep the helper linked
}
