//! Table IV: model complexity — player modules and parameter multiples
//! relative to a single generator/predictor pair's half.
//!
//! ```sh
//! cargo run --release -p dar-bench --bin table4
//! ```

use dar_bench::{build_model, dataset, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::quick();
    let data = dataset(Aspect::Aroma, &profile, 1);
    let cfg = RationaleConfig::default();
    let mut rng = dar_core::rng(0);
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);

    println!("== Table IV — model complexity ==");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>8}",
        "model", "modules", "params", "multiple", "paper"
    );
    // Reference: one player's parameter count (half of RNP).
    let rnp = build_model("RNP", &cfg, &emb, &data, 1, &mut rng);
    let single = rnp.num_params() / 2;
    let paper = [
        ("RNP", "2x"),
        ("CAR", "3x"),
        ("DMR", "4x"),
        ("A2R", "3x"),
        ("DAR", "3x"),
        ("3PLAYER", "3x"),
        ("Inter_RAT", "2x"),
        ("VIB", "-"),
    ];
    for (name, paper_mult) in paper {
        let m = build_model(name, &cfg, &emb, &data, 1, &mut rng);
        let (gens, preds) = m.player_modules();
        // DAR's frozen discriminator is excluded from trainable params but
        // still occupies memory; count it for the multiple.
        let trainable = m.num_params();
        let total = match name {
            "DAR" => trainable + single,
            _ => trainable,
        };
        println!(
            "{name:<12} {:>12} {:>12} {:>9.1}x {:>8}",
            format!("{gens}gen+{preds}pred"),
            total,
            total as f32 / single as f32,
            paper_mult
        );
    }
    println!("\nnote: this DMR folds the paper's class-wise predictor pair into one");
    println!("conditioned head (3x here vs 4x in the paper); DAR's 3x includes the");
    println!("frozen predictor^t, of which only 2x is trainable.");
}
