//! Table VII: the **skewed predictor** synthetic setting. The predictor is
//! pretrained for k epochs on the first sentence only (Appearance), then
//! the game trains on Aroma / Palate. RNP interlocks; A2R partially
//! recovers; DAR is barely affected.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin table7
//! ```

use dar_bench::{aspect_alpha, dataset, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    println!("== Table VII — skewed predictor on SynBeer ==");
    println!("(profile: {}, seeds {:?})", profile.name, profile.seeds);
    println!(
        "{:<8} {:<8} {:>6} {:>6} {:>6} {:>6}  per method",
        "aspect", "setting", "Acc", "P", "R", "F1"
    );

    for aspect in [Aspect::Aroma, Aspect::Palate] {
        for k in [10usize, 15, 20] {
            for method in ["RNP", "A2R", "DAR"] {
                let mut rows = Vec::new();
                for &seed in &profile.seeds {
                    rows.push(run_skewed(method, aspect, k, &profile, seed).test);
                }
                let m = dar_bench::MeanMetrics::of(&rows);
                println!(
                    "{:<8} skew{k:<4} {:>6.1} {:>6.1} {:>6.1} {:>6.1}  {method}",
                    aspect.name(),
                    m.acc.map(|a| a * 100.0).unwrap_or(f32::NAN),
                    m.precision * 100.0,
                    m.recall * 100.0,
                    m.f1 * 100.0
                );
            }
        }
        println!();
    }
    println!("paper shape: at skew20 RNP collapses (F1 11.0 Aroma / 0.6 Palate),");
    println!("A2R degrades (46.3 / 0.6), DAR holds (74.2 / 59.8).");
}

fn run_skewed(method: &str, aspect: Aspect, k: usize, profile: &Profile, seed: u64) -> TrainReport {
    let data = dataset(aspect, profile, seed);
    let cfg = RationaleConfig {
        sparsity: aspect_alpha(aspect),
        ..Default::default()
    };
    let mut rng = dar_core::rng(seed + 31);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);
    // Paper: batch 500, lr 1e-3, k epochs on the first sentence.
    let skewed = pretrain::skewed_predictor(&cfg, &emb, &data, k, &mut rng);
    let mut model: Box<dyn RationaleModel> = match method {
        "RNP" => Box::new(Rnp::with_predictor(&cfg, &emb, skewed, ml, &mut rng)),
        "A2R" => Box::new(A2r::with_predictor(&cfg, &emb, skewed, ml, &mut rng)),
        "DAR" => {
            let disc =
                pretrain::full_text_predictor(&cfg, &emb, &data, profile.pretrain_epochs, &mut rng);
            let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
            dar.pred = skewed;
            Box::new(dar)
        }
        other => panic!("unexpected method {other}"),
    };
    Trainer::new(profile.train_config()).fit(model.as_mut(), &data, &mut rng)
}
