//! Table IX: statistics of the generated datasets (counts, balance,
//! annotation sparsity) next to the paper's values for the real corpora.
//!
//! ```sh
//! DAR_PROFILE=full cargo run --release -p dar-bench --bin table9
//! ```

use dar_bench::{dataset, Profile};
use dar_core::prelude::*;
use dar_data::DatasetStats;

fn main() {
    let profile = Profile::from_env();
    println!(
        "== Table IX — dataset statistics (profile {}) ==",
        profile.name
    );
    let paper = [
        (Aspect::Appearance, 18.5),
        (Aspect::Aroma, 15.6),
        (Aspect::Palate, 12.4),
        (Aspect::Location, 8.5),
        (Aspect::Service, 11.5),
        (Aspect::Cleanliness, 8.9),
    ];
    for (aspect, paper_sparsity) in paper {
        let data = dataset(aspect, &profile, 17);
        let stats = DatasetStats::compute(&data);
        println!("{stats}");
        println!(
            "{:<24} paper sparsity {:.1}%  (delta {:+.1})",
            "",
            paper_sparsity,
            stats.sparsity_pct - paper_sparsity
        );
    }
    println!("\nabsolute counts are scaled for CPU training; balance and sparsity");
    println!("are the properties the experiments depend on.");
}
