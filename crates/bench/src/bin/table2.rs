//! Table II: main results on SynBeer (Appearance / Aroma / Palate) for
//! RNP, DMR, Inter_RAT, A2R, and DAR. Rationale sparsity is set near the
//! human-annotation level, as in the paper.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin table2
//! ```

use dar_bench::{print_header, run_mean, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    let cfg = RationaleConfig::default();
    let methods = ["RNP", "DMR", "Inter_RAT", "A2R", "DAR"];
    for aspect in [Aspect::Appearance, Aspect::Aroma, Aspect::Palate] {
        print_header(&format!("Table II — SynBeer {}", aspect.name()), &profile);
        for name in methods {
            let m = run_mean(name, aspect, &cfg, &profile);
            println!("{name:<16} {}", m.row());
        }
        println!();
    }
    println!("paper shape: DAR has the best F1 on every aspect (72.8/65.9/51.0 for");
    println!("RNP vs 79.8/74.4/66.6 for DAR on the real corpora).");
}
