//! Table VI: powerful pretrained encoders on SynBeer-Appearance. The
//! paper's BERT-base is substituted by the small MLM-pretrained transformer
//! of `dar-nn` (DESIGN.md §4). VIB and re-RNP degrade with a strong
//! encoder; DAR stays robust.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin table6
//! ```

use dar_bench::{dataset, print_header, Profile};
use dar_core::generator::Encoder;
use dar_core::prelude::*;
use dar_data::BatchIter;
use dar_nn::module::copy_params;
use dar_nn::{Module, TransformerConfig, TransformerEncoder};
use dar_tensor::optim::{clip_grad_norm, zero_grads, Adam, Optimizer};

fn main() {
    let profile = Profile::from_env();
    let aspect = Aspect::Appearance;
    let cfg = RationaleConfig {
        encoder: EncoderKind::Transformer,
        emb_dim: 48,
        sparsity: 0.19,
        lr: 5e-4,
        ..Default::default()
    };

    print_header(
        "Table VI — pretrained-encoder setting, SynBeer-Appearance",
        &profile,
    );
    for name in ["VIB", "RNP", "DAR"] {
        let mut rows = Vec::new();
        for &seed in &profile.seeds {
            let data = dataset(aspect, &profile, seed);
            let mut rng = dar_core::rng(seed + 1000);
            let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
            let ml = pretrain::max_len(&data);

            // "BERT": one transformer pretrained with MLM on the corpus,
            // then copied into every player's encoder.
            let pretrained = mlm_pretrain(&data, &cfg, ml, &mut rng);
            let mut model: Box<dyn RationaleModel> = match name {
                "VIB" => {
                    let m = Vib::new(&cfg, &emb, ml, &mut rng);
                    load(&m.gen.encoder, &pretrained);
                    load(&m.pred.encoder, &pretrained);
                    Box::new(m)
                }
                "RNP" => {
                    let m = Rnp::new(&cfg, &emb, ml, &mut rng);
                    load(&m.gen.encoder, &pretrained);
                    load(&m.pred.encoder, &pretrained);
                    Box::new(m)
                }
                "DAR" => {
                    // The discriminator is fine-tuned from the pretrained
                    // encoder on full text (Eq. (4)), then frozen.
                    let disc = Predictor::new(&cfg, &emb, ml, &mut rng);
                    load(&disc.encoder, &pretrained);
                    finetune_full_text(&disc, &data, profile.pretrain_epochs, cfg.lr, &mut rng);
                    let m = Dar::new(&cfg, &emb, disc, ml, &mut rng);
                    load(&m.gen.encoder, &pretrained);
                    load(&m.pred.encoder, &pretrained);
                    Box::new(m)
                }
                _ => unreachable!(),
            };
            let rep = Trainer::new(profile.train_config()).fit(model.as_mut(), &data, &mut rng);
            rows.push(rep.test);
        }
        let m = dar_bench::MeanMetrics::of(&rows);
        println!("{name:<16} {}", m.row());
    }
    println!("\npaper shape: with BERT encoders VIB=20.5 and re-RNP=20.5 F1 while");
    println!("DAR=72.8 — strong encoders amplify rationale shift except under DAR.");
}

/// Copy pretrained weights into a player's transformer encoder.
fn load(enc: &Encoder, pretrained: &TransformerEncoder) {
    if let Encoder::Transformer(t) = enc {
        copy_params(pretrained, t.as_ref());
    }
}

/// MLM-pretrain a transformer encoder on the dataset's corpus.
fn mlm_pretrain(
    data: &AspectDataset,
    cfg: &RationaleConfig,
    max_len: usize,
    rng: &mut dar_core::Rng,
) -> TransformerEncoder {
    let tcfg = TransformerConfig {
        vocab: data.vocab.len(),
        dim: cfg.emb_dim,
        heads: 4,
        layers: 2,
        ff_dim: 2 * cfg.emb_dim,
        max_len: max_len.max(256),
        mask_token: dar_text::vocab::MASK,
    };
    let enc = TransformerEncoder::new(rng, tcfg);
    let mut opt = Adam::with_lr(1e-3);
    let params = enc.params();
    for _ in 0..2 {
        for batch in BatchIter::shuffled(&data.train, 32, rng) {
            zero_grads(&params);
            let loss = enc.mlm_loss(&batch.ids, &batch.mask, 0.15, rng);
            loss.backward();
            clip_grad_norm(&params, 5.0);
            opt.step(&params);
        }
    }
    enc
}

/// Fine-tune a predictor on full text (Eq. (4)) from its current weights.
fn finetune_full_text(
    pred: &Predictor,
    data: &AspectDataset,
    epochs: usize,
    lr: f32,
    rng: &mut dar_core::Rng,
) {
    let mut opt = Adam::with_lr(lr);
    let params = pred.params();
    for _ in 0..epochs {
        for batch in BatchIter::shuffled(&data.train, 32, rng) {
            zero_grads(&params);
            let logits = pred.forward_full(&batch);
            dar_nn::loss::cross_entropy(&logits, &batch.labels).backward();
            clip_grad_norm(&params, 5.0);
            opt.step(&params);
        }
    }
}
