//! Fig. 6: DAR's predictor accuracy with the selected rationale vs the
//! full text as input, across all six aspects. Although the predictor
//! never sees full text during game training, Theorem 1 predicts it
//! generalizes to it.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin fig6
//! ```

use dar_bench::{aspect_alpha, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    println!("== Fig 6 — DAR predictor: rationale-input vs full-text accuracy ==");
    println!("(profile {}, seeds {:?})", profile.name, profile.seeds);
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "aspect", "acc(Z)", "acc(X)", "gap"
    );

    for aspect in [
        Aspect::Appearance,
        Aspect::Aroma,
        Aspect::Palate,
        Aspect::Location,
        Aspect::Service,
        Aspect::Cleanliness,
    ] {
        let cfg = RationaleConfig {
            sparsity: aspect_alpha(aspect),
            ..Default::default()
        };
        let mut accs = Vec::new();
        for &seed in &profile.seeds {
            let rep = dar_bench::run_once("DAR", aspect, &cfg, &profile, seed);
            accs.push((
                rep.test.acc.unwrap_or(0.0),
                rep.test.full_text_acc.unwrap_or(0.0),
            ));
        }
        let n = accs.len() as f32;
        let az = accs.iter().map(|a| a.0).sum::<f32>() / n;
        let ax = accs.iter().map(|a| a.1).sum::<f32>() / n;
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>8.1}",
            aspect.name(),
            az * 100.0,
            ax * 100.0,
            (az - ax) * 100.0
        );
    }
    println!("\npaper shape: the two bars are close on every aspect — DAR's");
    println!("predictor generalizes to the full text it never trained on.");
}
