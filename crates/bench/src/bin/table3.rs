//! Table III: main results on SynHotel (Location / Service / Cleanliness)
//! for RNP, CAR, DMR, Inter_RAT, A2R, and DAR.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin table3
//! ```

use dar_bench::{print_header, run_mean, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    let cfg = RationaleConfig::default();
    let methods = ["RNP", "CAR", "DMR", "Inter_RAT", "A2R", "DAR"];
    for aspect in [Aspect::Location, Aspect::Service, Aspect::Cleanliness] {
        print_header(&format!("Table III — SynHotel {}", aspect.name()), &profile);
        for name in methods {
            let m = run_mean(name, aspect, &cfg, &profile);
            println!("{name:<16} {}", m.row());
        }
        println!();
    }
    println!("paper shape: DAR best everywhere (56.0/48.4/39.5 F1); CAR and DMR");
    println!("report no Acc because their selectors consume the label.");
}
