//! Table V: SynBeer with **low rationale sparsity** (α ≈ 0.10–0.12, below
//! the human level) for RNP, CAR, DMR, and DAR.
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin table5
//! ```

use dar_bench::{print_header, Profile};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    let methods = ["RNP", "CAR", "DMR", "DAR"];
    for (aspect, alpha) in [
        (Aspect::Appearance, 0.115),
        (Aspect::Aroma, 0.105),
        (Aspect::Palate, 0.10),
    ] {
        // Override the per-aspect alpha with the low-sparsity setting.
        let cfg = RationaleConfig {
            sparsity: alpha,
            ..Default::default()
        };
        print_header(
            &format!(
                "Table V — SynBeer {} (low sparsity α={alpha})",
                aspect.name()
            ),
            &profile,
        );
        for name in methods {
            let m = run_mean_fixed_alpha(name, aspect, &cfg, &profile);
            println!("{name:<16} {}", m.row());
        }
        println!();
    }
    println!("paper shape: under tight budgets precision rises and recall falls;");
    println!("DAR stays best (71.7/68.5/58.2 F1 vs RNP's 56.2/57.3/47.5).");
}

/// Like [`dar_bench::run_mean`] but keeping the caller's α instead of the
/// per-aspect human level.
fn run_mean_fixed_alpha(
    name: &str,
    aspect: Aspect,
    cfg: &RationaleConfig,
    profile: &Profile,
) -> dar_bench::MeanMetrics {
    let metrics: Vec<RationaleMetrics> = profile
        .seeds
        .iter()
        .map(|&seed| {
            let data = dar_bench::dataset(aspect, profile, seed);
            let mut rng = dar_core::rng(seed.wrapping_mul(2654435761).wrapping_add(7));
            let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
            let mut model =
                dar_bench::build_model(name, cfg, &emb, &data, profile.pretrain_epochs, &mut rng);
            Trainer::new(profile.train_config())
                .fit(model.as_mut(), &data, &mut rng)
                .test
        })
        .collect();
    dar_bench::MeanMetrics::of(&metrics)
}
