//! Parallel-runtime speedup measurement (DESIGN.md §9).
//!
//! Trains the same DAR model four ways — the old composite per-timestep
//! GRU serially, then the fused kernel under thread budgets 1/2/4 — and
//! records wall-clock and a bitwise fingerprint of every run's training
//! history. The fused runs must be bit-identical across thread budgets;
//! the speedup column compares each configuration against the composite
//! serial baseline the runtime replaced.
//!
//! ```sh
//! cargo run --release -p dar-bench --bin parspeed
//! ```
//!
//! Output is appended to `results/parallel_speedup.txt`.

use std::fmt::Write as _;
use std::time::Instant;

use dar_bench::{run_once, Profile};
use dar_core::prelude::*;

/// Bitwise fingerprint of a run: every loss/score in the history plus the
/// final test metrics. Two runs with the same fingerprint took the same
/// optimization trajectory down to the last ulp.
fn fingerprint(rep: &TrainReport) -> Vec<u32> {
    let mut bits: Vec<u32> = rep
        .history
        .iter()
        .flat_map(|e| [e.train_loss.to_bits(), e.dev_score.to_bits()])
        .collect();
    for m in [&rep.test, &rep.dev] {
        bits.extend([
            m.precision.to_bits(),
            m.recall.to_bits(),
            m.f1.to_bits(),
            m.sparsity.to_bits(),
            m.acc.unwrap_or(-1.0).to_bits(),
        ]);
    }
    bits
}

fn timed_run(profile: &Profile, composite: bool, threads: usize) -> (f64, TrainReport) {
    dar_nn::gru::set_composite_gru(composite);
    dar_par::with_threads(threads, || {
        let start = Instant::now();
        let rep = run_once(
            "DAR",
            Aspect::Appearance,
            &RationaleConfig::default(),
            profile,
            17,
        );
        (start.elapsed().as_secs_f64(), rep)
    })
}

fn main() {
    let profile = Profile {
        name: "parspeed",
        scale: 0.4,
        epochs: 6,
        pretrain_epochs: 4,
        batch: 32,
        seeds: vec![17],
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("training DAR 4x (composite serial, fused @ 1/2/4 threads)...");
    let (t_comp, rep_comp) = timed_run(&profile, true, 1);
    println!("  composite, 1 thread: {t_comp:.2}s");
    let (t_f1, rep_f1) = timed_run(&profile, false, 1);
    println!("  fused,     1 thread: {t_f1:.2}s");
    let (t_f2, rep_f2) = timed_run(&profile, false, 2);
    println!("  fused,    2 threads: {t_f2:.2}s");
    let (t_f4, rep_f4) = timed_run(&profile, false, 4);
    println!("  fused,    4 threads: {t_f4:.2}s");

    let fp1 = fingerprint(&rep_f1);
    assert_eq!(
        fp1,
        fingerprint(&rep_f2),
        "fused run diverged between 1 and 2 threads"
    );
    assert_eq!(
        fp1,
        fingerprint(&rep_f4),
        "fused run diverged between 1 and 4 threads"
    );
    // The composite path is a float-reassociation of the same math: it must
    // land in the same neighborhood (same learned solution) without being
    // bit-equal — a cheap sanity check that the fused kernel is faithful.
    assert!(
        (rep_comp.test.f1 - rep_f1.test.f1).abs() < 0.15,
        "fused and composite runs learned different solutions: F1 {} vs {}",
        rep_comp.test.f1,
        rep_f1.test.f1
    );

    let speedup = t_comp / t_f4;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== parallel runtime speedup (DAR, profile parspeed) =="
    );
    let _ = writeln!(
        out,
        "hardware: {cores} CPU core(s) visible to the container"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>10}",
        "configuration", "wall_s", "speedup"
    );
    for (label, t) in [
        ("composite GRU, 1 thread", t_comp),
        ("fused GRU, 1 thread", t_f1),
        ("fused GRU, 2 threads", t_f2),
        ("fused GRU, 4 threads", t_f4),
    ] {
        let _ = writeln!(out, "{label:<28} {t:>8.2} {:>9.2}x", t_comp / t);
    }
    let _ = writeln!(
        out,
        "fused runs bit-identical across thread budgets: yes (fingerprint of \
         {} history/metric values)",
        fp1.len()
    );
    let _ = writeln!(
        out,
        "test F1: composite {:.3}, fused {:.3}",
        rep_comp.test.f1, rep_f1.test.f1
    );
    if cores == 1 {
        let _ = writeln!(
            out,
            "note: only one core is visible, so thread budgets cannot shorten \
             wall-clock here; the 4-thread speedup over the old serial runtime \
             comes from the fused BPTT kernel that the shard-parallel rewrite \
             introduced. On multi-core hosts the sharded GEMM/GRU kernels add \
             on top of it with bit-identical results."
        );
    }
    print!("{out}");

    std::fs::create_dir_all("results").expect("cannot create results/");
    std::fs::write("results/parallel_speedup.txt", &out).expect("cannot write results");
    println!("wrote results/parallel_speedup.txt");
    dar_bench::write_obs("parspeed");
    assert!(
        speedup >= 1.5,
        "4-thread runtime is only {speedup:.2}x over the serial baseline"
    );
}
