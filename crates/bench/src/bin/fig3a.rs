//! Fig. 3a (and Figs. 7–8): the relationship between RNP's full-text
//! accuracy and its rationale quality, across the five hyper-parameter
//! sets of Table X. Run with an aspect argument:
//!
//! ```sh
//! cargo run --release -p dar-bench --bin fig3a            # Service (Fig 3a)
//! cargo run --release -p dar-bench --bin fig3a location   # Fig 7
//! cargo run --release -p dar-bench --bin fig3a cleanliness # Fig 8
//! ```

use dar_bench::{aspect_alpha, dataset, Profile};
use dar_core::prelude::*;

/// Table X's five hyper-parameter sets, scaled to this repo's dimensions
/// (paper: lr {1,2}e-4, batch {256,512}, hidden {100,200} at GloVe-100d).
const PARAMS: [(f32, usize, usize); 5] = [
    (1e-3, 64, 32),  // Param1
    (1e-3, 64, 64),  // Param2
    (2e-3, 64, 64),  // Param3
    (1e-3, 128, 64), // Param4
    (2e-3, 128, 64), // Param5
];

fn main() {
    let aspect = match std::env::args().nth(1).as_deref() {
        None | Some("service") => Aspect::Service,
        Some("location") => Aspect::Location,
        Some("cleanliness") => Aspect::Cleanliness,
        Some(other) => panic!("unknown hotel aspect '{other}'"),
    };
    let profile = Profile::from_env();
    println!(
        "== Fig 3a — RNP full-text acc vs rationale F1, SynHotel-{} ==",
        aspect.name()
    );
    println!("(profile {}, seed {})", profile.name, profile.seeds[0]);
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>12}",
        "param", "lr", "batch", "hidden", ""
    );
    println!("{:<8} {:>10} {:>12}", "", "full-acc", "rationale-F1");

    let seed = profile.seeds[0];
    let data = dataset(aspect, &profile, seed);
    let mut series = Vec::new();
    for (i, &(lr, batch, hidden)) in PARAMS.iter().enumerate() {
        let cfg = RationaleConfig {
            sparsity: aspect_alpha(aspect),
            lr,
            hidden,
            ..Default::default()
        };
        let mut rng = dar_core::rng(seed + i as u64);
        let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
        let ml = pretrain::max_len(&data);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let tcfg = TrainConfig {
            epochs: profile.epochs,
            batch_size: batch,
            patience: Some((profile.epochs / 2).max(3)),
            ..Default::default()
        };
        let rep = Trainer::new(tcfg).fit(&mut model, &data, &mut rng);
        let full = rep.test.full_text_acc.unwrap_or(0.0);
        println!(
            "Param{:<3} {:>10.1} {:>12.1}   (lr {lr}, batch {batch}, hidden {hidden})",
            i + 1,
            full * 100.0,
            rep.test.f1 * 100.0
        );
        series.push((full, rep.test.f1));
    }

    // The paper's claim is a positive relationship between the two series.
    let corr = pearson(&series);
    println!("\nPearson correlation(full-text acc, rationale F1) = {corr:.2}");
    println!("paper shape: the two curves rise and fall together (positive corr).");
}

fn pearson(xy: &[(f32, f32)]) -> f32 {
    let n = xy.len() as f32;
    let (mx, my) = (
        xy.iter().map(|p| p.0).sum::<f32>() / n,
        xy.iter().map(|p| p.1).sum::<f32>() / n,
    );
    let cov: f32 = xy.iter().map(|&(x, y)| (x - mx) * (y - my)).sum();
    let vx: f32 = xy.iter().map(|&(x, _)| (x - mx).powi(2)).sum();
    let vy: f32 = xy.iter().map(|&(_, y)| (y - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}
