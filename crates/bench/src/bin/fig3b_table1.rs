//! Fig. 3b + Table I: RNP's accuracy on its selected rationales vs on the
//! full text, per SynHotel aspect, plus the per-class predictive P/R/F1 of
//! the full-text path (the paper's evidence of rationale shift —
//! Cleanliness collapses to an all-negative predictor, precision "nan").
//!
//! ```sh
//! DAR_PROFILE=quick cargo run --release -p dar-bench --bin fig3b_table1
//! ```

use dar_bench::{aspect_alpha, dataset, Profile};
use dar_core::eval::{class_metrics, full_text_predictions};
use dar_core::prelude::*;

fn main() {
    let profile = Profile::from_env();
    println!("== Fig 3b + Table I — RNP rationale-vs-full-text accuracy, SynHotel ==");
    println!(
        "(profile {}, seed {}; Param1-style config)",
        profile.name, profile.seeds[0]
    );
    println!(
        "{:<14} {:>5} {:>10} {:>10} | {:>6} {:>6} {:>6}",
        "aspect", "S", "acc(Z)", "acc(X)", "P+", "R+", "F1+"
    );

    let seed = profile.seeds[0];
    for aspect in [Aspect::Location, Aspect::Service, Aspect::Cleanliness] {
        let data = dataset(aspect, &profile, seed);
        let cfg = RationaleConfig {
            sparsity: aspect_alpha(aspect),
            hidden: 32, // Param1: the smallest hidden size of Table X
            ..Default::default()
        };
        let mut rng = dar_core::rng(seed + 5);
        let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
        let ml = pretrain::max_len(&data);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let rep = Trainer::new(profile.train_config()).fit(&mut model, &data, &mut rng);

        // Table I: per-class metrics of the predictor on the full text.
        let (preds, gold) = full_text_predictions(&model, &data.test, 64);
        let pos = class_metrics(&preds, &gold, 1);
        println!(
            "{:<14} {:>5.1} {:>10.1} {:>10.1} | {:>6.1} {:>6.1} {:>6.1}",
            aspect.name(),
            rep.test.sparsity * 100.0,
            rep.test.acc.unwrap_or(f32::NAN) * 100.0,
            rep.test.full_text_acc.unwrap_or(f32::NAN) * 100.0,
            pos.precision * 100.0,
            pos.recall * 100.0,
            pos.f1 * 100.0
        );
    }
    println!("\npaper shape: acc(Z) stays high while acc(X) collapses for Service");
    println!("and Cleanliness; Table I shows the collapsed predictor is one-sided");
    println!("(positive-class P/R degenerate, 'NaN' when never predicted).");
}
