//! Criterion macro-benchmarks: one training step per model — the measured
//! counterpart of Table IV's complexity claims (RNP 2×, A2R/DAR/CAR 3×,
//! DMR co-trained teacher, ...).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dar_bench::{build_model, Profile};
use dar_core::prelude::*;
use dar_data::BatchIter;

fn bench_train_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    let profile = Profile::quick();
    let data = dar_bench::dataset(Aspect::Aroma, &profile, 3);
    let cfg = RationaleConfig {
        emb_dim: 32,
        hidden: 32,
        ..Default::default()
    };
    let mut rng = dar_core::rng(4);
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
    let batch = BatchIter::sequential(&data.train, 32)
        .next()
        .expect("empty train");

    for name in [
        "RNP",
        "DAR",
        "A2R",
        "DMR",
        "Inter_RAT",
        "CAR",
        "3PLAYER",
        "VIB",
    ] {
        let mut model = build_model(name, &cfg, &emb, &data, 1, &mut rng);
        let mut step_rng = dar_core::rng(5);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |bench, ()| {
            bench.iter(|| model.train_step(&batch, &mut step_rng))
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    let profile = Profile::quick();
    let data = dar_bench::dataset(Aspect::Aroma, &profile, 3);
    let cfg = RationaleConfig {
        emb_dim: 32,
        hidden: 32,
        ..Default::default()
    };
    let mut rng = dar_core::rng(6);
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
    let batch = BatchIter::sequential(&data.test, 32)
        .next()
        .expect("empty test");
    let model = build_model("DAR", &cfg, &emb, &data, 1, &mut rng);
    group.bench_function("DAR_infer_b32", |bench| {
        bench.iter(|| dar_tensor::no_grad(|| model.infer(&batch)))
    });
    group.finish();
}

criterion_group!(benches, bench_train_steps, bench_inference);
criterion_main!(benches);
