//! Criterion micro-benchmarks of the tensor/nn kernels every experiment
//! spends its time in: GEMM, GRU steps, Gumbel sampling, softmax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dar_nn::gumbel::gumbel_softmax_st;
use dar_nn::{BiGru, Module};
use dar_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &(m, k, n) in &[
        (64usize, 114usize, 128usize),
        (128, 114, 128),
        (256, 256, 256),
    ] {
        let a = Tensor::new(vec![0.5; m * k], &[m, k]);
        let b = Tensor::new(vec![0.25; k * n], &[k, n]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| a.matmul(b)),
        );
    }
    group.finish();
}

fn bench_gru_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigru_forward");
    group.sample_size(10);
    for &(batch, len, hidden) in &[(64usize, 56usize, 64usize), (32, 56, 64)] {
        let mut rng = dar_tensor::rng(0);
        let gru = BiGru::new(&mut rng, 50, hidden);
        let x = Tensor::new(vec![0.1; batch * len * 50], &[batch, len, 50]);
        let mask = Tensor::ones(&[batch, len]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{batch}_l{len}_h{hidden}")),
            &(gru, x, mask),
            |bench, (gru, x, mask)| {
                bench.iter(|| dar_tensor::no_grad(|| gru.forward(x, Some(mask))))
            },
        );
    }
    group.finish();
}

fn bench_gru_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigru_train_step");
    group.sample_size(10);
    let mut rng = dar_tensor::rng(1);
    let gru = BiGru::new(&mut rng, 50, 64);
    let x = Tensor::new(vec![0.1; 64 * 56 * 50], &[64, 56, 50]);
    group.bench_function("fwd+bwd b64_l56_h64", |bench| {
        bench.iter(|| {
            for p in gru.params() {
                p.zero_grad();
            }
            gru.forward(&x, None).sum().backward();
        })
    });
    group.finish();
}

fn bench_gumbel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gumbel_st");
    group.sample_size(30);
    let logits = Tensor::param(vec![0.3; 64 * 56 * 2], &[64 * 56, 2]);
    group.bench_function("b64_l56", |bench| {
        let mut rng = dar_tensor::rng(2);
        bench.iter(|| gumbel_softmax_st(&logits, 0.7, &mut rng))
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    group.sample_size(30);
    let x = Tensor::new(vec![0.5; 64 * 128], &[64, 128]);
    group.bench_function("64x128", |bench| bench.iter(|| x.softmax()));
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gru_forward,
    bench_gru_backward,
    bench_gumbel,
    bench_softmax
);
criterion_main!(benches);
