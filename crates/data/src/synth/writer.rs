//! The shared review writer behind [`super::beer`] and [`super::hotel`].

use rand::seq::SliceRandom;
use rand::Rng as _;

use dar_tensor::Rng;
use dar_text::Vocab;

use crate::review::{AspectDataset, Review};
use crate::synth::lexicon::{AspectLexicon, DomainLexicon};
use crate::synth::SynthConfig;

fn pick<'a>(rng: &mut Rng, items: &[&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// One sentence: surface tokens plus per-token rationale flags (all false
/// unless this is the target aspect's sentence).
struct Sentence {
    tokens: Vec<String>,
    rationale: Vec<bool>,
}

fn push(s: &mut Sentence, tok: &str, core: bool) {
    s.tokens.push(tok.to_owned());
    s.rationale.push(core);
}

/// An aspect sentence: `<starter> [core: topic.. be-verb intensifier?
/// sentiment (and sentiment)*] filler.. <punct>`; the core span is the
/// human-rationale annotation when `is_target`.
fn aspect_sentence(
    lex: &DomainLexicon,
    alex: &AspectLexicon,
    label: usize,
    is_target: bool,
    cfg: &SynthConfig,
    rng: &mut Rng,
) -> Sentence {
    let mut s = Sentence {
        tokens: Vec::new(),
        rationale: Vec::new(),
    };
    push(&mut s, pick(rng, lex.starters), false);
    // Core (annotated) span.
    let mut topics: Vec<&str> = alex.topic.to_vec();
    topics.shuffle(rng);
    for t in topics.iter().take(alex.core_topic_tokens) {
        push(&mut s, t, is_target);
    }
    push(&mut s, pick(rng, lex.be_verbs), is_target);
    if rng.gen::<f32>() < 0.6 {
        push(&mut s, pick(rng, lex.intensifiers), is_target);
    }
    let bank = if label == 1 {
        alex.positive
    } else {
        alex.negative
    };
    let mut sentiments: Vec<&str> = bank.to_vec();
    sentiments.shuffle(rng);
    for (k, w) in sentiments
        .iter()
        .take(cfg.sentiment_tokens.max(1))
        .enumerate()
    {
        if k > 0 {
            push(&mut s, "and", is_target);
        }
        push(&mut s, w, is_target);
    }
    // Label-independent tail filler, with occasional mid-sentence
    // punctuation — the shortcut tokens of Fig. 2.
    let (lo, hi) = cfg.filler_in_sentence;
    let n_fill = rng.gen_range(lo..=hi.max(lo + 1));
    for _ in 0..n_fill {
        if rng.gen::<f32>() < 0.12 {
            push(
                &mut s,
                if rng.gen::<f32>() < 0.5 { "-" } else { "," },
                false,
            );
        }
        push(&mut s, pick(rng, lex.fillers), false);
    }
    push(
        &mut s,
        if rng.gen::<f32>() < 0.15 { "!" } else { "." },
        false,
    );
    s
}

/// A pure-filler sentence (no aspect content, no annotation).
fn filler_sentence(lex: &DomainLexicon, rng: &mut Rng) -> Sentence {
    let mut s = Sentence {
        tokens: Vec::new(),
        rationale: Vec::new(),
    };
    push(&mut s, pick(rng, lex.starters), false);
    let n = rng.gen_range(4..9);
    for _ in 0..n {
        if rng.gen::<f32>() < 0.08 {
            push(&mut s, "-", false);
        }
        push(&mut s, pick(rng, lex.fillers), false);
    }
    push(&mut s, ".", false);
    s
}

/// Generate a full review for a forced target label.
///
/// The latent "overall quality" equals the target label; other aspects
/// copy it with probability `cfg.correlation` and are drawn independently
/// otherwise.
fn gen_review(
    lex: &DomainLexicon,
    cfg: &SynthConfig,
    target_label: usize,
    vocab: &Vocab,
    rng: &mut Rng,
) -> Review {
    let aspects = cfg.aspect.domain_aspects();
    let overall = target_label;
    let labels: Vec<usize> = aspects
        .iter()
        .map(|&a| {
            if a == cfg.aspect {
                target_label
            } else if rng.gen::<f32>() < cfg.correlation {
                overall
            } else {
                rng.gen_range(0..2)
            }
        })
        .collect();

    // Sentence order: with probability `first_sentence_bias` the domain's
    // first aspect (Appearance for beer) leads; the rest are shuffled.
    let mut order: Vec<usize> = (0..aspects.len()).collect();
    order.shuffle(rng);
    if rng.gen::<f32>() < cfg.first_sentence_bias {
        if let Some(pos) = order.iter().position(|&i| i == 0) {
            order.swap(0, pos);
        }
    }

    let mut sentences: Vec<Sentence> = Vec::new();
    for &ai in &order {
        sentences.push(aspect_sentence(
            lex,
            &lex.aspects[ai],
            labels[ai],
            aspects[ai] == cfg.aspect,
            cfg,
            rng,
        ));
    }
    for _ in 0..cfg.filler_sentences {
        // Filler sentences never lead: the first sentence stays the biased
        // aspect sentence, which Table VII's skew setting relies on.
        let pos = rng.gen_range(1..=sentences.len());
        sentences.insert(pos, filler_sentence(lex, rng));
    }

    let first_sentence_end = sentences[0].tokens.len();
    let mut ids = Vec::new();
    let mut rationale = Vec::new();
    for s in &sentences {
        for (tok, &core) in s.tokens.iter().zip(&s.rationale) {
            ids.push(vocab.id(tok));
            rationale.push(core);
        }
    }
    Review {
        ids,
        label: target_label,
        rationale,
        first_sentence_end,
    }
}

fn gen_split(
    lex: &DomainLexicon,
    cfg: &SynthConfig,
    n: usize,
    label_noise: f32,
    vocab: &Vocab,
    rng: &mut Rng,
) -> Vec<Review> {
    (0..n)
        .map(|i| {
            // Alternating labels force exact balance (paper App. A:
            // "randomly select examples ... to construct a balanced set").
            let mut r = gen_review(lex, cfg, i % 2, vocab, rng);
            if label_noise > 0.0 && rng.gen::<f32>() < label_noise {
                r.label = 1 - r.label;
            }
            r
        })
        .collect()
}

/// Generate a full aspect dataset.
pub(crate) fn generate(cfg: &SynthConfig, rng: &mut Rng) -> AspectDataset {
    let lex = DomainLexicon::for_domain(cfg.aspect.domain());
    let mut vocab = Vocab::empty();
    for w in lex.all_words() {
        vocab.insert(w);
    }
    let train = gen_split(&lex, cfg, cfg.n_train, cfg.label_noise, &vocab, rng);
    let dev = gen_split(&lex, cfg, cfg.n_dev, cfg.label_noise, &vocab, rng);
    // Test labels stay clean so rationale metrics are measured against
    // uncorrupted ground truth.
    let test = gen_split(&lex, cfg, cfg.n_test, 0.0, &vocab, rng);
    AspectDataset {
        name: format!("Syn{:?}-{}", cfg.aspect.domain(), cfg.aspect.name()),
        aspect: cfg.aspect,
        train,
        dev,
        test,
        vocab,
    }
}
