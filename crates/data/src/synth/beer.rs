//! SynBeer: the synthetic BeerAdvocate stand-in (multi-aspect beer reviews
//! with sentence-1 appearance bias and decorrelated aspect labels).

use dar_tensor::Rng;

use crate::review::AspectDataset;
use crate::synth::{writer, Aspect, Domain, SynthConfig};

/// Generator facade for the beer domain.
pub struct SynBeer;

impl SynBeer {
    /// Generate with explicit configuration.
    ///
    /// # Panics
    /// Panics if `cfg.aspect` is not a beer aspect.
    pub fn generate(cfg: &SynthConfig, rng: &mut Rng) -> AspectDataset {
        assert_eq!(
            cfg.aspect.domain(),
            Domain::Beer,
            "SynBeer needs a beer aspect"
        );
        writer::generate(cfg, rng)
    }

    /// Generate with the paper-matched defaults for `aspect`.
    pub fn default_aspect(aspect: Aspect, rng: &mut Rng) -> AspectDataset {
        Self::generate(&SynthConfig::beer(aspect), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Aspect;

    fn quick(aspect: Aspect) -> AspectDataset {
        let mut rng = dar_tensor::rng(7);
        SynBeer::generate(&SynthConfig::beer(aspect).scaled(0.1), &mut rng)
    }

    #[test]
    fn split_sizes_match_config() {
        let cfg = SynthConfig::beer(Aspect::Aroma).scaled(0.1);
        let mut rng = dar_tensor::rng(0);
        let d = SynBeer::generate(&cfg, &mut rng);
        assert_eq!(d.train.len(), cfg.n_train);
        assert_eq!(d.dev.len(), cfg.n_dev);
        assert_eq!(d.test.len(), cfg.n_test);
    }

    #[test]
    fn test_split_is_balanced() {
        let d = quick(Aspect::Appearance);
        let pos = d.test.iter().filter(|r| r.label == 1).count();
        assert_eq!(pos, d.test.len() / 2);
    }

    #[test]
    fn every_test_review_has_a_rationale() {
        let d = quick(Aspect::Palate);
        for r in &d.test {
            assert!(r.rationale.iter().any(|&b| b), "review without rationale");
            assert_eq!(r.rationale.len(), r.ids.len());
        }
    }

    #[test]
    fn annotation_sparsity_near_table_ix() {
        // Paper Table IX: Appearance 18.5, Aroma 15.6, Palate 12.4 (%).
        for (aspect, target) in [
            (Aspect::Appearance, 0.185),
            (Aspect::Aroma, 0.156),
            (Aspect::Palate, 0.124),
        ] {
            let d = quick(aspect);
            let s = d.annotation_sparsity();
            assert!(
                (s - target).abs() < 0.07,
                "{aspect:?}: sparsity {s:.3} too far from paper {target:.3}"
            );
        }
    }

    #[test]
    fn first_sentence_is_mostly_appearance() {
        // With bias 0.9 the appearance sentence must lead in ~90% of
        // reviews: check via the rationale span of the Appearance dataset —
        // its annotation lies in the first sentence when appearance leads.
        let d = quick(Aspect::Appearance);
        let leading = d
            .test
            .iter()
            .filter(|r| r.rationale[..r.first_sentence_end].iter().any(|&b| b))
            .count();
        let frac = leading as f32 / d.test.len() as f32;
        assert!(frac > 0.8, "appearance led only {frac:.2} of reviews");
    }

    #[test]
    fn rationale_tokens_differ_by_label() {
        // The annotated sentiment tokens of positive and negative reviews
        // must be disjoint (they come from disjoint banks).
        let d = quick(Aspect::Aroma);
        let mut pos_toks = std::collections::HashSet::new();
        let mut neg_toks = std::collections::HashSet::new();
        for r in &d.test {
            for (i, &core) in r.rationale.iter().enumerate() {
                if core {
                    if r.label == 1 {
                        pos_toks.insert(r.ids[i]);
                    } else {
                        neg_toks.insert(r.ids[i]);
                    }
                }
            }
        }
        // Topic/verb tokens are shared; sentiment words must not be.
        // Verify at least some tokens are exclusive to each side.
        assert!(pos_toks.difference(&neg_toks).count() >= 5);
        assert!(neg_toks.difference(&pos_toks).count() >= 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig::beer(Aspect::Palate).scaled(0.05);
        let a = SynBeer::generate(&cfg, &mut dar_tensor::rng(3));
        let b = SynBeer::generate(&cfg, &mut dar_tensor::rng(3));
        assert_eq!(a.train[0].ids, b.train[0].ids);
        assert_eq!(a.test[5].rationale, b.test[5].rationale);
    }
}
