//! Word banks for the synthetic review domains.
//!
//! Three kinds of tokens, mirroring the information structure of the real
//! corpora (DESIGN.md §4):
//!
//! * **topic** words — indicate an aspect but not its polarity;
//! * **sentiment** words — aspect-specific *and* polarity-specific; these
//!   are the planted ground-truth rationales;
//! * **filler** (+ intensifiers, starters, punctuation) — carry no label
//!   signal at all, making them the only channel a colluding generator can
//!   use to smuggle the label past the predictor.

use crate::synth::{Aspect, Domain};

/// Word banks for one aspect.
pub struct AspectLexicon {
    pub aspect: Aspect,
    pub topic: &'static [&'static str],
    pub positive: &'static [&'static str],
    pub negative: &'static [&'static str],
    /// Topic tokens placed in the annotated core span (controls the
    /// per-aspect annotation sparsity of Table IX).
    pub core_topic_tokens: usize,
}

/// Word banks shared inside a domain.
pub struct DomainLexicon {
    pub domain: Domain,
    pub aspects: Vec<AspectLexicon>,
    pub fillers: &'static [&'static str],
    pub intensifiers: &'static [&'static str],
    pub be_verbs: &'static [&'static str],
    pub starters: &'static [&'static str],
    pub punctuation: &'static [&'static str],
}

const INTENSIFIERS: &[&str] = &[
    "very", "quite", "rather", "really", "somewhat", "fairly", "truly", "notably",
];

const BE_VERBS: &[&str] = &["is", "was", "seems", "looks", "feels", "appears", "stays"];

const STARTERS: &[&str] = &["the", "this", "that", "its", "a", "my", "our"];

const PUNCT: &[&str] = &[".", ",", "!", "-", ";", "(", ")"];

const BEER_FILLERS: &[&str] = &[
    "i",
    "poured",
    "bottle",
    "into",
    "pint",
    "glass",
    "tonight",
    "with",
    "friends",
    "after",
    "dinner",
    "bought",
    "from",
    "local",
    "store",
    "last",
    "week",
    "it",
    "came",
    "in",
    "twelve",
    "ounce",
    "serving",
    "at",
    "cellar",
    "temperature",
    "we",
    "tried",
    "another",
    "round",
    "before",
    "game",
    "started",
    "label",
    "says",
    "brewed",
    "since",
    "review",
    "notes",
    "follow",
    "overall",
    "session",
    "style",
    "ale",
    "lager",
    "batch",
    "number",
    "listed",
    "on",
    "side",
    "and",
    "then",
    "some",
    "more",
    "of",
    "to",
    "for",
    "as",
    "had",
    "have",
    "not",
    "but",
    "so",
    "one",
    "two",
    "first",
    "second",
    "again",
    "also",
    "while",
    "during",
    "about",
    "around",
];

const HOTEL_FILLERS: &[&str] = &[
    "we",
    "stayed",
    "three",
    "nights",
    "in",
    "june",
    "for",
    "a",
    "conference",
    "downtown",
    "booked",
    "through",
    "website",
    "months",
    "ahead",
    "checked",
    "in",
    "around",
    "noon",
    "our",
    "luggage",
    "arrived",
    "later",
    "the",
    "lobby",
    "had",
    "coffee",
    "available",
    "breakfast",
    "buffet",
    "ran",
    "until",
    "ten",
    "parking",
    "garage",
    "next",
    "door",
    "elevator",
    "took",
    "us",
    "to",
    "eighth",
    "floor",
    "front",
    "desk",
    "gave",
    "map",
    "of",
    "and",
    "then",
    "some",
    "more",
    "as",
    "it",
    "was",
    "not",
    "but",
    "so",
    "also",
    "while",
    "during",
    "about",
    "trip",
    "visit",
    "family",
    "kids",
    "business",
    "weekend",
    "city",
    "airport",
    "shuttle",
    "taxi",
    "station",
    "restaurant",
    "nearby",
    "street",
];

// ---------------------------------------------------------------------
// Beer aspects
// ---------------------------------------------------------------------

const BEER_APPEARANCE_TOPIC: &[&str] = &[
    "head",
    "color",
    "lacing",
    "pour",
    "foam",
    "body",
    "hue",
    "clarity",
    "carbonation",
];
const BEER_APPEARANCE_POS: &[&str] = &[
    "golden",
    "glistening",
    "radiant",
    "creamy",
    "lustrous",
    "sparkling",
    "amber-bright",
    "inviting",
    "crystal-clear",
    "frothy",
    "luminous",
    "rich-hued",
];
const BEER_APPEARANCE_NEG: &[&str] = &[
    "murky",
    "lifeless",
    "watery-looking",
    "drab",
    "cloudy-dull",
    "patchy",
    "greyish",
    "unappealing",
    "flat-looking",
    "soupy",
    "swampy",
    "dingy",
];

const BEER_AROMA_TOPIC: &[&str] = &[
    "aroma",
    "nose",
    "smell",
    "scent",
    "bouquet",
    "fragrance",
    "whiff",
];
const BEER_AROMA_POS: &[&str] = &[
    "citrusy",
    "floral",
    "piney",
    "fruity",
    "honeyed",
    "spicy-sweet",
    "aromatic",
    "zesty",
    "perfumed",
    "caramel-laced",
    "resinous",
    "fragrant",
];
const BEER_AROMA_NEG: &[&str] = &[
    "skunky",
    "musty",
    "sulfuric",
    "stale-smelling",
    "metallic",
    "cardboardy",
    "rancid",
    "vinegary",
    "funky-off",
    "chemical",
    "sour-off",
    "dank-stale",
];

const BEER_PALATE_TOPIC: &[&str] = &[
    "palate",
    "mouthfeel",
    "finish",
    "texture",
    "aftertaste",
    "feel",
];
const BEER_PALATE_POS: &[&str] = &[
    "velvety",
    "smooth",
    "crisp",
    "silky",
    "full-bodied",
    "balanced",
    "rounded",
    "luscious",
    "refreshing",
    "satisfying",
    "plush",
    "lively",
];
const BEER_PALATE_NEG: &[&str] = &[
    "astringent",
    "thin",
    "harsh",
    "cloying",
    "chalky",
    "grainy-rough",
    "bitter-harsh",
    "syrupy-flat",
    "abrasive",
    "hollow",
    "puckering",
    "gritty",
];

// ---------------------------------------------------------------------
// Hotel aspects
// ---------------------------------------------------------------------

const HOTEL_LOCATION_TOPIC: &[&str] = &[
    "location",
    "neighborhood",
    "area",
    "surroundings",
    "position",
    "spot",
];
const HOTEL_LOCATION_POS: &[&str] = &[
    "central",
    "convenient",
    "walkable",
    "scenic",
    "well-connected",
    "prime",
    "picturesque",
    "accessible",
    "ideal",
    "charming-area",
    "handy",
    "well-placed",
];
const HOTEL_LOCATION_NEG: &[&str] = &[
    "remote",
    "isolated",
    "sketchy",
    "noisy-street",
    "inconvenient",
    "rundown-block",
    "far-flung",
    "industrial",
    "desolate",
    "awkward-to-reach",
    "gridlocked",
    "seedy",
];

const HOTEL_SERVICE_TOPIC: &[&str] = &[
    "service",
    "staff",
    "reception",
    "concierge",
    "housekeeping",
    "crew",
];
const HOTEL_SERVICE_POS: &[&str] = &[
    "attentive",
    "courteous",
    "friendly",
    "prompt",
    "helpful",
    "gracious",
    "welcoming",
    "professional",
    "accommodating",
    "responsive",
    "thoughtful",
    "obliging",
];
const HOTEL_SERVICE_NEG: &[&str] = &[
    "rude",
    "dismissive",
    "sluggish",
    "unhelpful",
    "surly",
    "indifferent",
    "disorganized",
    "hostile",
    "neglectful",
    "curt",
    "apathetic",
    "incompetent",
];

const HOTEL_CLEAN_TOPIC: &[&str] = &[
    "room", "bathroom", "linens", "carpet", "bedding", "towels", "suite",
];
const HOTEL_CLEAN_POS: &[&str] = &[
    "spotless",
    "immaculate",
    "pristine",
    "fresh-smelling",
    "sanitized",
    "tidy",
    "gleaming",
    "well-kept",
    "dust-free",
    "laundered",
    "polished",
    "hygienic",
];
const HOTEL_CLEAN_NEG: &[&str] = &[
    "filthy",
    "grimy",
    "stained",
    "moldy",
    "dusty",
    "sticky",
    "smelly",
    "unwashed",
    "cockroach-ridden",
    "mildewed",
    "grubby",
    "soiled",
];

impl DomainLexicon {
    /// The lexicon for a domain.
    pub fn for_domain(domain: Domain) -> Self {
        match domain {
            Domain::Beer => DomainLexicon {
                domain,
                aspects: vec![
                    AspectLexicon {
                        aspect: Aspect::Appearance,
                        topic: BEER_APPEARANCE_TOPIC,
                        positive: BEER_APPEARANCE_POS,
                        negative: BEER_APPEARANCE_NEG,
                        core_topic_tokens: 2,
                    },
                    AspectLexicon {
                        aspect: Aspect::Aroma,
                        topic: BEER_AROMA_TOPIC,
                        positive: BEER_AROMA_POS,
                        negative: BEER_AROMA_NEG,
                        core_topic_tokens: 2,
                    },
                    AspectLexicon {
                        aspect: Aspect::Palate,
                        topic: BEER_PALATE_TOPIC,
                        positive: BEER_PALATE_POS,
                        negative: BEER_PALATE_NEG,
                        core_topic_tokens: 1,
                    },
                ],
                fillers: BEER_FILLERS,
                intensifiers: INTENSIFIERS,
                be_verbs: BE_VERBS,
                starters: STARTERS,
                punctuation: PUNCT,
            },
            Domain::Hotel => DomainLexicon {
                domain,
                aspects: vec![
                    AspectLexicon {
                        aspect: Aspect::Location,
                        topic: HOTEL_LOCATION_TOPIC,
                        positive: HOTEL_LOCATION_POS,
                        negative: HOTEL_LOCATION_NEG,
                        core_topic_tokens: 1,
                    },
                    AspectLexicon {
                        aspect: Aspect::Service,
                        topic: HOTEL_SERVICE_TOPIC,
                        positive: HOTEL_SERVICE_POS,
                        negative: HOTEL_SERVICE_NEG,
                        core_topic_tokens: 2,
                    },
                    AspectLexicon {
                        aspect: Aspect::Cleanliness,
                        topic: HOTEL_CLEAN_TOPIC,
                        positive: HOTEL_CLEAN_POS,
                        negative: HOTEL_CLEAN_NEG,
                        core_topic_tokens: 1,
                    },
                ],
                fillers: HOTEL_FILLERS,
                intensifiers: INTENSIFIERS,
                be_verbs: BE_VERBS,
                starters: STARTERS,
                punctuation: PUNCT,
            },
        }
    }

    /// Lexicon for the named aspect.
    pub fn aspect(&self, aspect: Aspect) -> &AspectLexicon {
        self.aspects
            .iter()
            .find(|a| a.aspect == aspect)
            .unwrap_or_else(|| panic!("{aspect:?} not in {:?} lexicon", self.domain))
    }

    /// All distinct word types of the domain (for vocabulary building).
    pub fn all_words(&self) -> Vec<&'static str> {
        let mut words: Vec<&'static str> = Vec::new();
        for a in &self.aspects {
            words.extend_from_slice(a.topic);
            words.extend_from_slice(a.positive);
            words.extend_from_slice(a.negative);
        }
        words.extend_from_slice(self.fillers);
        words.extend_from_slice(self.intensifiers);
        words.extend_from_slice(self.be_verbs);
        words.extend_from_slice(self.starters);
        words.extend_from_slice(self.punctuation);
        words.sort_unstable();
        words.dedup();
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Sentiment banks must be disjoint across aspects and polarities —
    /// otherwise the "aspect-specific rationale" premise breaks.
    #[test]
    fn sentiment_banks_are_disjoint() {
        for domain in [Domain::Beer, Domain::Hotel] {
            let lex = DomainLexicon::for_domain(domain);
            let mut seen: HashSet<&str> = HashSet::new();
            for a in &lex.aspects {
                for &w in a.positive.iter().chain(a.negative) {
                    assert!(
                        seen.insert(w),
                        "duplicate sentiment word {w:?} in {domain:?}"
                    );
                }
            }
        }
    }

    /// Filler banks must not contain any sentiment word (they must be
    /// label-independent).
    #[test]
    fn fillers_carry_no_sentiment() {
        for domain in [Domain::Beer, Domain::Hotel] {
            let lex = DomainLexicon::for_domain(domain);
            let sentiment: HashSet<&str> = lex
                .aspects
                .iter()
                .flat_map(|a| a.positive.iter().chain(a.negative))
                .copied()
                .collect();
            for &f in lex.fillers {
                assert!(!sentiment.contains(f), "filler {f:?} is a sentiment word");
            }
        }
    }

    #[test]
    fn aspect_lookup() {
        let lex = DomainLexicon::for_domain(Domain::Beer);
        assert_eq!(lex.aspect(Aspect::Palate).core_topic_tokens, 1);
    }

    #[test]
    fn all_words_deduplicated() {
        let lex = DomainLexicon::for_domain(Domain::Hotel);
        let words = lex.all_words();
        let set: HashSet<_> = words.iter().collect();
        assert_eq!(set.len(), words.len());
        assert!(words.len() > 150);
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn cross_domain_aspect_panics() {
        let lex = DomainLexicon::for_domain(Domain::Beer);
        let _ = lex.aspect(Aspect::Service);
    }
}
