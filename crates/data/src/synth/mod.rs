//! Synthetic review generators.

pub mod beer;
pub mod hotel;
pub mod lexicon;
mod writer;

/// Review domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    Beer,
    Hotel,
}

/// The six trained aspects of the paper (three per domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aspect {
    // Beer
    Appearance,
    Aroma,
    Palate,
    // Hotel
    Location,
    Service,
    Cleanliness,
}

impl Aspect {
    pub fn domain(&self) -> Domain {
        match self {
            Aspect::Appearance | Aspect::Aroma | Aspect::Palate => Domain::Beer,
            Aspect::Location | Aspect::Service | Aspect::Cleanliness => Domain::Hotel,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Aspect::Appearance => "Appearance",
            Aspect::Aroma => "Aroma",
            Aspect::Palate => "Palate",
            Aspect::Location => "Location",
            Aspect::Service => "Service",
            Aspect::Cleanliness => "Cleanliness",
        }
    }

    /// The three aspects of this aspect's domain, in generation order.
    pub fn domain_aspects(&self) -> [Aspect; 3] {
        match self.domain() {
            Domain::Beer => [Aspect::Appearance, Aspect::Aroma, Aspect::Palate],
            Domain::Hotel => [Aspect::Location, Aspect::Service, Aspect::Cleanliness],
        }
    }
}

/// Generation parameters shared by both domains.
///
/// Defaults are scaled-down versions of the paper's Table IX corpora: the
/// structural properties (sparsity, balance, correlation) match while
/// absolute counts are sized for CPU training.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Target aspect (labels and annotations refer to it).
    pub aspect: Aspect,
    pub n_train: usize,
    pub n_dev: usize,
    pub n_test: usize,
    /// Probability that each aspect's polarity copies the latent overall
    /// quality (otherwise it is drawn independently). 0.0 = fully
    /// decorrelated (Lei et al.'s subsets, the paper's setting);
    /// ~0.7 mimics the raw BeerAdvocate correlation.
    pub correlation: f32,
    /// Fraction of training labels flipped at random (annotation noise of
    /// real review scores).
    pub label_noise: f32,
    /// Probability that the first sentence is the Appearance/first-domain
    /// aspect (SynBeer uses 0.9, matching "the first sentence is usually
    /// about appearance"; SynHotel shuffles).
    pub first_sentence_bias: f32,
    /// Number of pure-filler sentences appended to dilute sparsity.
    pub filler_sentences: usize,
    /// Filler tokens added inside each aspect sentence (min, max).
    pub filler_in_sentence: (usize, usize),
    /// Sentiment tokens per aspect sentence (rationale carriers).
    pub sentiment_tokens: usize,
}

impl SynthConfig {
    /// Beer defaults (per-aspect sparsity ≈ 18.5 / 15.6 / 12.4 %).
    pub fn beer(aspect: Aspect) -> Self {
        assert_eq!(aspect.domain(), Domain::Beer, "not a beer aspect");
        SynthConfig {
            aspect,
            n_train: 1600,
            n_dev: 300,
            n_test: 200,
            correlation: 0.0,
            label_noise: 0.02,
            first_sentence_bias: 0.9,
            filler_sentences: 1,
            filler_in_sentence: (2, 5),
            sentiment_tokens: 2,
        }
    }

    /// Hotel defaults: longer, noisier reviews with sparser annotations
    /// (≈ 8.5 / 11.5 / 8.9 %).
    pub fn hotel(aspect: Aspect) -> Self {
        assert_eq!(aspect.domain(), Domain::Hotel, "not a hotel aspect");
        SynthConfig {
            aspect,
            n_train: 2000,
            n_dev: 300,
            n_test: 200,
            correlation: 0.0,
            label_noise: 0.02,
            first_sentence_bias: 0.0,
            filler_sentences: 3,
            filler_in_sentence: (3, 7),
            sentiment_tokens: 1,
        }
    }

    /// Shrink all split sizes by `factor` (quick test/bench runs).
    pub fn scaled(mut self, factor: f32) -> Self {
        self.n_train = ((self.n_train as f32 * factor) as usize).max(8);
        self.n_dev = ((self.n_dev as f32 * factor) as usize).max(8);
        self.n_test = ((self.n_test as f32 * factor) as usize).max(8);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aspect_domains() {
        assert_eq!(Aspect::Aroma.domain(), Domain::Beer);
        assert_eq!(Aspect::Service.domain(), Domain::Hotel);
        assert_eq!(Aspect::Palate.domain_aspects()[0], Aspect::Appearance);
    }

    #[test]
    #[should_panic(expected = "not a beer aspect")]
    fn beer_config_rejects_hotel_aspect() {
        let _ = SynthConfig::beer(Aspect::Service);
    }

    #[test]
    fn scaled_keeps_minimums() {
        let c = SynthConfig::beer(Aspect::Aroma).scaled(0.0001);
        assert!(c.n_train >= 8 && c.n_dev >= 8 && c.n_test >= 8);
    }
}
