//! SynHotel: the synthetic HotelReview stand-in (longer, noisier reviews
//! with sparser annotations than SynBeer).

use dar_tensor::Rng;

use crate::review::AspectDataset;
use crate::synth::{writer, Aspect, Domain, SynthConfig};

/// Generator facade for the hotel domain.
pub struct SynHotel;

impl SynHotel {
    /// Generate with explicit configuration.
    ///
    /// # Panics
    /// Panics if `cfg.aspect` is not a hotel aspect.
    pub fn generate(cfg: &SynthConfig, rng: &mut Rng) -> AspectDataset {
        assert_eq!(
            cfg.aspect.domain(),
            Domain::Hotel,
            "SynHotel needs a hotel aspect"
        );
        writer::generate(cfg, rng)
    }

    /// Generate with the paper-matched defaults for `aspect`.
    pub fn default_aspect(aspect: Aspect, rng: &mut Rng) -> AspectDataset {
        Self::generate(&SynthConfig::hotel(aspect), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Aspect;

    fn quick(aspect: Aspect) -> AspectDataset {
        let mut rng = dar_tensor::rng(11);
        SynHotel::generate(&SynthConfig::hotel(aspect).scaled(0.1), &mut rng)
    }

    #[test]
    fn annotation_sparsity_near_table_ix() {
        // Paper Table IX: Location 8.5, Service 11.5, Cleanliness 8.9 (%).
        for (aspect, target) in [
            (Aspect::Location, 0.085),
            (Aspect::Service, 0.115),
            (Aspect::Cleanliness, 0.089),
        ] {
            let d = quick(aspect);
            let s = d.annotation_sparsity();
            assert!(
                (s - target).abs() < 0.06,
                "{aspect:?}: sparsity {s:.3} too far from paper {target:.3}"
            );
        }
    }

    #[test]
    fn hotel_reviews_are_longer_than_beer() {
        let h = quick(Aspect::Service);
        let mut rng = dar_tensor::rng(11);
        let b = crate::synth::beer::SynBeer::generate(
            &SynthConfig::beer(Aspect::Aroma).scaled(0.1),
            &mut rng,
        );
        let hl: f32 = h.test.iter().map(|r| r.len() as f32).sum::<f32>() / h.test.len() as f32;
        let bl: f32 = b.test.iter().map(|r| r.len() as f32).sum::<f32>() / b.test.len() as f32;
        assert!(hl > bl, "hotel mean len {hl} not above beer {bl}");
    }

    #[test]
    fn vocab_contains_the_shortcut_dash() {
        let d = quick(Aspect::Location);
        assert!(d.vocab.contains("-"));
        // And it actually occurs in the corpus.
        let dash = d.vocab.id("-");
        let occurrences: usize = d
            .train
            .iter()
            .map(|r| r.ids.iter().filter(|&&t| t == dash).count())
            .sum();
        assert!(occurrences > 0, "dash never appears");
    }

    #[test]
    fn dash_frequency_is_label_independent() {
        // The shortcut channel must carry no label signal in the raw data.
        let d = quick(Aspect::Cleanliness);
        let dash = d.vocab.id("-");
        let mut per_label = [0.0f32; 2];
        let mut counts = [0usize; 2];
        for r in &d.train {
            per_label[r.label] +=
                r.ids.iter().filter(|&&t| t == dash).count() as f32 / r.len() as f32;
            counts[r.label] += 1;
        }
        let p0 = per_label[0] / counts[0] as f32;
        let p1 = per_label[1] / counts[1] as f32;
        assert!(
            (p0 - p1).abs() < 0.01,
            "dash rate differs by label: {p0} vs {p1}"
        );
    }

    #[test]
    fn no_first_sentence_bias() {
        // Hotel sentences are fully shuffled; the Location annotation
        // should lead in roughly 1/3 of reviews, not 90%.
        let d = quick(Aspect::Location);
        let leading = d
            .test
            .iter()
            .filter(|r| r.rationale[..r.first_sentence_end].iter().any(|&b| b))
            .count();
        let frac = leading as f32 / d.test.len() as f32;
        assert!(
            frac < 0.65,
            "location led {frac:.2} of reviews despite no bias"
        );
    }
}
