//! Split utilities: label balance accounting and re-splitting.

use crate::review::Review;

/// Positive/negative counts of a split (the Pos/Neg columns of Table IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelBalance {
    pub pos: usize,
    pub neg: usize,
}

impl LabelBalance {
    pub fn of(reviews: &[Review]) -> Self {
        let pos = reviews.iter().filter(|r| r.label == 1).count();
        LabelBalance {
            pos,
            neg: reviews.len() - pos,
        }
    }

    /// Largest class share (0.5 = perfectly balanced).
    pub fn majority_fraction(&self) -> f32 {
        let total = (self.pos + self.neg).max(1);
        self.pos.max(self.neg) as f32 / total as f32
    }
}

/// Deterministically split reviews into two parts with `first` elements in
/// the first (no shuffling — callers shuffle beforehand if needed).
pub fn split_at(reviews: Vec<Review>, first: usize) -> (Vec<Review>, Vec<Review>) {
    assert!(first <= reviews.len(), "split point beyond dataset");
    let mut a = reviews;
    let b = a.split_off(first);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(label: usize) -> Review {
        Review {
            ids: vec![5],
            label,
            rationale: vec![false],
            first_sentence_end: 1,
        }
    }

    #[test]
    fn balance_counts() {
        let rs = vec![mk(0), mk(1), mk(1)];
        let b = LabelBalance::of(&rs);
        assert_eq!(b, LabelBalance { pos: 2, neg: 1 });
        assert!((b.majority_fraction() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn split_preserves_order_and_total() {
        let rs = vec![mk(0), mk(1), mk(0), mk(1)];
        let (a, b) = split_at(rs, 1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(a[0].label, 0);
    }

    #[test]
    fn empty_balance_is_safe() {
        let b = LabelBalance::of(&[]);
        assert_eq!(b.majority_fraction(), 0.0);
    }
}
