//! `dar-data`: synthetic multi-aspect review datasets with planted
//! token-level rationales — the stand-ins for BeerAdvocate (McAuley et al.)
//! and HotelReview (Wang et al.), which are not redistributable.
//!
//! The generators reproduce the structural properties the DAR paper's
//! phenomena depend on (DESIGN.md §4):
//!
//! 1. each aspect has a sparse, localized ground-truth rationale
//!    (aspect-specific sentiment words inside that aspect's sentence);
//! 2. non-rationale tokens (filler, topic words, punctuation) carry no
//!    label signal, so any accuracy routed through them is a
//!    generator-created shortcut — the rationale-shift channel;
//! 3. aspect polarities are correlated through a latent "overall quality"
//!    unless decorrelated, mirroring Lei et al.'s decorrelated subsets;
//! 4. in SynBeer the first sentence is (usually) the Appearance sentence,
//!    which the skewed-predictor experiment of Table VII relies on.

pub mod loader;
pub mod review;
pub mod splits;
pub mod stats;
pub mod synth;

pub use loader::{Batch, BatchIter};
pub use review::{AspectDataset, Review};
pub use stats::DatasetStats;
pub use synth::beer::SynBeer;
pub use synth::hotel::SynHotel;
pub use synth::{Aspect, Domain, SynthConfig};
