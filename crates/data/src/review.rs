//! Review and dataset containers.

use dar_tensor::{DarError, DarResult};
use dar_text::Vocab;

use crate::synth::Aspect;

/// A single review, encoded for one target aspect.
#[derive(Debug, Clone)]
pub struct Review {
    /// Token ids (unpadded).
    pub ids: Vec<usize>,
    /// Binary label of the target aspect (0 negative, 1 positive).
    pub label: usize,
    /// Token-level human-rationale annotation for the target aspect
    /// (parallel to `ids`). Only meaningful on the test split, as in the
    /// real corpora where annotations exist on the test set only.
    pub rationale: Vec<bool>,
    /// Index one past the end of the first sentence (position after the
    /// first sentence terminator) — used by the skewed-predictor setting.
    pub first_sentence_end: usize,
}

impl Review {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Fraction of tokens annotated as rationale.
    pub fn rationale_sparsity(&self) -> f32 {
        if self.ids.is_empty() {
            return 0.0;
        }
        self.rationale.iter().filter(|&&b| b).count() as f32 / self.ids.len() as f32
    }

    /// Admission check for a single untrusted review: non-empty, within
    /// the length cap, every token id in vocabulary, and the rationale
    /// annotation parallel to the ids. This is the cheap per-request gate
    /// the serving runtime runs before a review may enter a batch; the
    /// typed errors let the caller reject without panicking.
    pub fn admissible(&self, vocab_size: usize, max_len: usize) -> DarResult<()> {
        if self.ids.is_empty() {
            return Err(DarError::EmptyInput);
        }
        if self.ids.len() > max_len {
            return Err(DarError::InputTooLong {
                len: self.ids.len(),
                cap: max_len,
            });
        }
        if self.rationale.len() != self.ids.len() {
            return Err(DarError::InvalidData(format!(
                "rationale length {} does not match {} ids",
                self.rationale.len(),
                self.ids.len()
            )));
        }
        for (position, &token) in self.ids.iter().enumerate() {
            if token >= vocab_size {
                return Err(DarError::TokenOutOfRange {
                    position,
                    token,
                    vocab: vocab_size,
                });
            }
        }
        Ok(())
    }

    /// A copy truncated to the first sentence (skewed-predictor
    /// pretraining data, Table VII).
    pub fn first_sentence(&self) -> Review {
        let end = self.first_sentence_end.min(self.ids.len()).max(1);
        Review {
            ids: self.ids[..end].to_vec(),
            label: self.label,
            rationale: self.rationale[..end].to_vec(),
            first_sentence_end: end,
        }
    }
}

/// A dataset for one aspect of one domain, split as in the paper
/// (App. A / Table IX): balanced train, dev, and an annotated test split.
#[derive(Debug, Clone)]
pub struct AspectDataset {
    pub name: String,
    pub aspect: Aspect,
    pub train: Vec<Review>,
    pub dev: Vec<Review>,
    pub test: Vec<Review>,
    pub vocab: Vocab,
}

impl AspectDataset {
    /// Decode a review back to tokens for display.
    pub fn decode(&self, review: &Review) -> Vec<&str> {
        self.vocab.decode(&review.ids)
    }

    /// Mean annotated sparsity over the test split (the `Sparsity` column
    /// of Table IX).
    pub fn annotation_sparsity(&self) -> f32 {
        if self.test.is_empty() {
            return 0.0;
        }
        self.test
            .iter()
            .map(Review::rationale_sparsity)
            .sum::<f32>()
            / self.test.len() as f32
    }

    /// Validate the whole dataset before training: every token id must be
    /// in vocabulary, annotations must be parallel to the ids, and labels
    /// binary. Run this on any data that did not come from the trusted
    /// synthetic generators (e.g. a corrupted or malformed on-disk dump)
    /// so a bad review surfaces as an error instead of an out-of-bounds
    /// embedding lookup deep inside a training step.
    pub fn validate(&self) -> DarResult<()> {
        let vocab = self.vocab.len();
        let mut position = 0usize;
        for r in self.train.iter().chain(&self.dev).chain(&self.test) {
            if r.ids.is_empty() {
                return Err(DarError::InvalidData(format!(
                    "empty review at token position {position} in '{}'",
                    self.name
                )));
            }
            if r.rationale.len() != r.ids.len() {
                return Err(DarError::InvalidData(format!(
                    "rationale length {} does not match {} ids (position {position})",
                    r.rationale.len(),
                    r.ids.len()
                )));
            }
            if r.label > 1 {
                return Err(DarError::InvalidData(format!(
                    "non-binary label {} (position {position})",
                    r.label
                )));
            }
            for &token in &r.ids {
                if token >= vocab {
                    return Err(DarError::TokenOutOfRange {
                        position,
                        token,
                        vocab,
                    });
                }
                position += 1;
            }
        }
        Ok(())
    }

    /// All id sequences (for embedding pretraining).
    pub fn corpus(&self) -> dar_text::Corpus {
        dar_text::Corpus {
            docs: self
                .train
                .iter()
                .chain(&self.dev)
                .chain(&self.test)
                .map(|r| r.ids.clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn review() -> Review {
        Review {
            ids: vec![5, 6, 7, 8, 9, 10],
            label: 1,
            rationale: vec![false, true, true, false, false, false],
            first_sentence_end: 4,
        }
    }

    #[test]
    fn sparsity_fraction() {
        assert!((review().rationale_sparsity() - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn first_sentence_truncation() {
        let r = review().first_sentence();
        assert_eq!(r.ids, vec![5, 6, 7, 8]);
        assert_eq!(r.rationale.len(), 4);
        assert_eq!(r.label, 1);
    }

    #[test]
    fn first_sentence_clamps_to_len() {
        let mut r = review();
        r.first_sentence_end = 100;
        assert_eq!(r.first_sentence().len(), 6);
    }

    #[test]
    fn admissible_gates_untrusted_reviews() {
        let r = review();
        assert!(r.admissible(100, 16).is_ok());
        // Empty.
        let mut bad = review();
        bad.ids.clear();
        bad.rationale.clear();
        assert!(matches!(bad.admissible(100, 16), Err(DarError::EmptyInput)));
        // Over-length.
        assert!(matches!(
            r.admissible(100, 3),
            Err(DarError::InputTooLong { len: 6, cap: 3 })
        ));
        // Out-of-vocabulary token.
        assert!(matches!(
            r.admissible(7, 16),
            Err(DarError::TokenOutOfRange {
                position: 2,
                token: 7,
                vocab: 7,
            })
        ));
        // Ragged annotation.
        let mut ragged = review();
        ragged.rationale.pop();
        assert!(matches!(
            ragged.admissible(100, 16),
            Err(DarError::InvalidData(_))
        ));
    }

    fn dataset() -> AspectDataset {
        let vocab = Vocab::build(
            ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]
                .iter()
                .copied(),
            1,
        );
        AspectDataset {
            name: "unit".to_owned(),
            aspect: Aspect::Aroma,
            train: vec![review()],
            dev: vec![review()],
            test: vec![review()],
            vocab,
        }
    }

    #[test]
    fn validate_accepts_well_formed_data() {
        let data = dataset();
        assert!(data.vocab.len() > 10, "fixture vocab too small");
        data.validate().expect("well-formed dataset");
    }

    #[test]
    fn validate_flags_out_of_vocab_token() {
        let mut data = dataset();
        data.dev[0].ids[2] = 10_000;
        let err = data.validate().unwrap_err();
        match err {
            dar_tensor::DarError::TokenOutOfRange {
                position, token, ..
            } => {
                // Six train tokens precede the bad dev token.
                assert_eq!((position, token), (8, 10_000));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn validate_flags_ragged_rationale_and_bad_label() {
        let mut data = dataset();
        data.test[0].rationale.pop();
        assert!(data.validate().is_err());
        let mut data = dataset();
        data.train[0].label = 7;
        assert!(data.validate().is_err());
        let mut data = dataset();
        data.train[0].ids.clear();
        data.train[0].rationale.clear();
        assert!(data.validate().is_err());
    }
}
