//! Dataset statistics — the generator of Table IX rows.

use std::fmt;

use crate::review::AspectDataset;
use crate::splits::LabelBalance;

/// The statistics the paper reports per aspect dataset (Table IX).
#[derive(Debug, Clone)]
pub struct DatasetStats {
    pub name: String,
    pub train: LabelBalance,
    pub dev: LabelBalance,
    pub annotation: LabelBalance,
    /// Mean annotated-rationale sparsity on the test split, in percent.
    pub sparsity_pct: f32,
    pub mean_tokens: f32,
}

impl DatasetStats {
    pub fn compute(ds: &AspectDataset) -> Self {
        let mean_tokens = if ds.test.is_empty() {
            0.0
        } else {
            ds.test.iter().map(|r| r.len() as f32).sum::<f32>() / ds.test.len() as f32
        };
        DatasetStats {
            name: ds.name.clone(),
            train: LabelBalance::of(&ds.train),
            dev: LabelBalance::of(&ds.dev),
            annotation: LabelBalance::of(&ds.test),
            sparsity_pct: ds.annotation_sparsity() * 100.0,
            mean_tokens,
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} train {}/{}  dev {}/{}  annot {}/{}  sparsity {:.1}%  mean-len {:.1}",
            self.name,
            self.train.pos,
            self.train.neg,
            self.dev.pos,
            self.dev.neg,
            self.annotation.pos,
            self.annotation.neg,
            self.sparsity_pct,
            self.mean_tokens,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{Aspect, SynthConfig};
    use crate::SynBeer;

    #[test]
    fn stats_reflect_generated_data() {
        let mut rng = dar_tensor::rng(0);
        let ds = SynBeer::generate(&SynthConfig::beer(Aspect::Aroma).scaled(0.05), &mut rng);
        let st = DatasetStats::compute(&ds);
        assert_eq!(st.train.pos + st.train.neg, ds.train.len());
        assert!(st.sparsity_pct > 5.0 && st.sparsity_pct < 30.0);
        assert!(st.mean_tokens > 10.0);
        let line = st.to_string();
        assert!(line.contains("SynBeer-Aroma"));
    }
}
