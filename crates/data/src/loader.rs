//! Mini-batching with padding and masks.

use rand::seq::SliceRandom;

use dar_tensor::{DarError, DarResult, Rng, Tensor};
use dar_text::vocab::PAD;

use crate::review::Review;

/// One padded mini-batch.
pub struct Batch {
    /// Padded token ids, `batch` rows of equal length.
    pub ids: Vec<Vec<usize>>,
    /// `[b, l]` float mask: 1 for real tokens, 0 for padding.
    pub mask: Tensor,
    /// Target labels.
    pub labels: Vec<usize>,
    /// Padded rationale annotations (false on padding).
    pub rationales: Vec<Vec<bool>>,
    /// Original (unpadded) lengths.
    pub lengths: Vec<usize>,
}

impl Batch {
    /// Assemble a batch from reviews, padding to the longest.
    ///
    /// Errors with [`DarError::EmptyBatch`] on an empty slice. Token ids
    /// are *not* validated here — use [`Self::from_reviews_checked`] when
    /// the data comes from outside the trusted synthetic generators.
    pub fn from_reviews(reviews: &[&Review]) -> DarResult<Batch> {
        if reviews.is_empty() {
            return Err(DarError::EmptyBatch);
        }
        Ok(Self::build(reviews))
    }

    /// Assemble a batch and validate every review: token ids against the
    /// vocabulary size (so a malformed review can never cause an
    /// out-of-bounds embedding lookup downstream) and non-emptiness (an
    /// empty review would contribute an all-zero mask row that models turn
    /// into NaN pooling outputs).
    pub fn from_reviews_checked(reviews: &[&Review], vocab_size: usize) -> DarResult<Batch> {
        Self::from_reviews_bounded(reviews, vocab_size, usize::MAX)
    }

    /// [`Self::from_reviews_checked`] with a per-review length cap — the
    /// admission path for untrusted (serving) input, where an over-length
    /// review must be rejected with a typed error before it forces a huge
    /// padded batch.
    pub fn from_reviews_bounded(
        reviews: &[&Review],
        vocab_size: usize,
        max_len: usize,
    ) -> DarResult<Batch> {
        if reviews.is_empty() {
            return Err(DarError::EmptyBatch);
        }
        let mut position = 0usize;
        for r in reviews {
            if r.ids.is_empty() {
                return Err(DarError::EmptyInput);
            }
            if r.ids.len() > max_len {
                return Err(DarError::InputTooLong {
                    len: r.ids.len(),
                    cap: max_len,
                });
            }
            for &token in &r.ids {
                if token >= vocab_size {
                    return Err(DarError::TokenOutOfRange {
                        position,
                        token,
                        vocab: vocab_size,
                    });
                }
                position += 1;
            }
        }
        Ok(Self::build(reviews))
    }

    /// Infallible assembly; callers guarantee `reviews` is non-empty.
    fn build(reviews: &[&Review]) -> Batch {
        let max_len = reviews.iter().map(|r| r.len()).max().unwrap_or(1).max(1);
        let b = reviews.len();
        let mut ids = Vec::with_capacity(b);
        let mut mask = vec![0.0f32; b * max_len];
        let mut rationales = Vec::with_capacity(b);
        let mut labels = Vec::with_capacity(b);
        let mut lengths = Vec::with_capacity(b);
        for (i, r) in reviews.iter().enumerate() {
            let mut row = r.ids.clone();
            let mut rat = r.rationale.clone();
            for t in 0..r.len() {
                mask[i * max_len + t] = 1.0;
            }
            row.resize(max_len, PAD);
            rat.resize(max_len, false);
            ids.push(row);
            rationales.push(rat);
            labels.push(r.label);
            lengths.push(r.len());
        }
        Batch {
            ids,
            mask: Tensor::new(mask, &[b, max_len]),
            labels,
            rationales,
            lengths,
        }
    }

    /// A sub-batch containing rows `range` (padded length unchanged).
    ///
    /// Used by sharded gradient accumulation: shard boundaries come from
    /// `dar_par::shard_range`, so keeping the padded width identical means
    /// every shard sees the same per-token layout as the full batch.
    pub fn rows(&self, range: std::ops::Range<usize>) -> Batch {
        assert!(range.end <= self.len(), "row range {range:?} out of bounds");
        let l = self.seq_len();
        let mask = self.mask.values()[range.start * l..range.end * l].to_vec();
        Batch {
            ids: self.ids[range.clone()].to_vec(),
            mask: Tensor::new(mask, &[range.len(), l]),
            labels: self.labels[range.clone()].to_vec(),
            rationales: self.rationales[range.clone()].to_vec(),
            lengths: self.lengths[range].to_vec(),
        }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Padded sequence length.
    pub fn seq_len(&self) -> usize {
        self.ids.first().map(|r| r.len()).unwrap_or(0)
    }
}

/// Shuffled mini-batch iterator over a review slice.
pub struct BatchIter<'a> {
    reviews: &'a [Review],
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Shuffled batches (training).
    pub fn shuffled(reviews: &'a [Review], batch_size: usize, rng: &mut Rng) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..reviews.len()).collect();
        order.shuffle(rng);
        BatchIter {
            reviews,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// In-order batches (evaluation).
    pub fn sequential(reviews: &'a [Review], batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter {
            reviews,
            order: (0..reviews.len()).collect(),
            batch_size,
            cursor: 0,
        }
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let rows: Vec<&Review> = self.order[self.cursor..end]
            .iter()
            .map(|&i| &self.reviews[i])
            .collect();
        self.cursor = end;
        // `cursor < order.len()` guarantees a non-empty chunk.
        Some(Batch::build(&rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reviews() -> Vec<Review> {
        (0..5)
            .map(|i| Review {
                ids: vec![10 + i; i + 1],
                label: i % 2,
                rationale: vec![true; i + 1],
                first_sentence_end: 1,
            })
            .collect()
    }

    #[test]
    fn rows_slices_every_field_and_keeps_padding() {
        let rs = reviews();
        let batch = Batch::from_reviews(&rs.iter().collect::<Vec<_>>()).unwrap();
        let sub = batch.rows(1..4);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.seq_len(), batch.seq_len());
        assert_eq!(sub.ids, batch.ids[1..4]);
        assert_eq!(sub.labels, batch.labels[1..4]);
        assert_eq!(sub.rationales, batch.rationales[1..4]);
        assert_eq!(sub.lengths, batch.lengths[1..4]);
        let l = batch.seq_len();
        assert_eq!(sub.mask.to_vec(), batch.mask.to_vec()[l..4 * l]);
        assert_eq!(sub.mask.shape(), &[3, l]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rows_rejects_out_of_range() {
        let rs = reviews();
        let batch = Batch::from_reviews(&rs.iter().collect::<Vec<_>>()).unwrap();
        let _ = batch.rows(3..6);
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        assert!(matches!(
            Batch::from_reviews(&[]),
            Err(DarError::EmptyBatch)
        ));
        assert!(matches!(
            Batch::from_reviews_checked(&[], 100),
            Err(DarError::EmptyBatch)
        ));
    }

    #[test]
    fn checked_assembly_rejects_out_of_vocab_tokens() {
        let good = Review {
            ids: vec![3, 4],
            label: 0,
            rationale: vec![true, false],
            first_sentence_end: 1,
        };
        let bad = Review {
            ids: vec![3, 250],
            label: 1,
            rationale: vec![false, true],
            first_sentence_end: 1,
        };
        assert!(Batch::from_reviews_checked(&[&good], 10).is_ok());
        match Batch::from_reviews_checked(&[&good, &bad], 10) {
            Err(DarError::TokenOutOfRange {
                position,
                token,
                vocab,
            }) => {
                assert_eq!((position, token, vocab), (3, 250, 10));
            }
            Err(other) => panic!("wrong error: {other:?}"),
            Ok(_) => panic!("out-of-vocab token accepted"),
        }
    }

    #[test]
    fn checked_assembly_rejects_empty_and_overlength_reviews() {
        let good = Review {
            ids: vec![3, 4],
            label: 0,
            rationale: vec![true, false],
            first_sentence_end: 1,
        };
        let empty = Review {
            ids: vec![],
            label: 0,
            rationale: vec![],
            first_sentence_end: 1,
        };
        assert!(matches!(
            Batch::from_reviews_checked(&[&good, &empty], 10),
            Err(DarError::EmptyInput)
        ));
        let long = Review {
            ids: vec![3; 9],
            label: 1,
            rationale: vec![false; 9],
            first_sentence_end: 1,
        };
        assert!(matches!(
            Batch::from_reviews_bounded(&[&good, &long], 10, 4),
            Err(DarError::InputTooLong { len: 9, cap: 4 })
        ));
        assert!(Batch::from_reviews_bounded(&[&good, &long], 10, 16).is_ok());
    }

    #[test]
    fn padding_and_mask() {
        let rs = reviews();
        let refs: Vec<&Review> = rs.iter().collect();
        let b = Batch::from_reviews(&refs).unwrap();
        assert_eq!(b.seq_len(), 5);
        assert_eq!(b.ids[0], vec![10, 0, 0, 0, 0]);
        let m = b.mask.to_vec();
        assert_eq!(&m[..5], &[1.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(&m[20..], &[1.0; 5]);
        assert!(!b.rationales[0][1], "padding must not be annotated");
    }

    #[test]
    fn sequential_iter_covers_all_rows_once() {
        let rs = reviews();
        let total: usize = BatchIter::sequential(&rs, 2).map(|b| b.len()).sum();
        assert_eq!(total, 5);
        let sizes: Vec<usize> = BatchIter::sequential(&rs, 2).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn shuffled_iter_is_a_permutation() {
        let rs = reviews();
        let mut rng = dar_tensor::rng(0);
        let mut seen: Vec<usize> = BatchIter::shuffled(&rs, 2, &mut rng)
            .flat_map(|b| b.lengths.clone())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn shuffle_depends_on_seed() {
        let rs = reviews();
        let a: Vec<usize> = BatchIter::shuffled(&rs, 5, &mut dar_tensor::rng(1))
            .flat_map(|b| b.lengths.clone())
            .collect();
        let b: Vec<usize> = BatchIter::shuffled(&rs, 5, &mut dar_tensor::rng(2))
            .flat_map(|b| b.lengths.clone())
            .collect();
        assert_ne!(a, b, "different seeds produced identical order (unlucky?)");
    }
}
