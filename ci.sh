#!/bin/bash
# Repo CI gate: formatting, lints, build, tests. Run before merging and as
# the run_experiments.sh preflight (skip there with DAR_SKIP_CI=1).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (-D warnings) ==="
cargo clippy --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test --release ==="
cargo test --workspace --release -q

echo "ci.sh: all checks passed"
