#!/bin/bash
# Repo CI gate: formatting, lints, build, tests. Run before merging and as
# the run_experiments.sh preflight (skip there with DAR_SKIP_CI=1).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (-D warnings) ==="
cargo clippy --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

# dar-par lives under crates/shims/, which the workspace excludes so the
# shims stay dependency-free; its tests must be invoked standalone.
echo "=== dar-par pool tests (standalone, workspace-excluded) ==="
cargo test --manifest-path crates/shims/dar-par/Cargo.toml --release -q

# The full suite runs under two thread budgets. Results must not depend
# on the budget (DESIGN.md §9) — a test that passes serially but fails
# parallel (or vice versa) is a determinism bug, not flakiness.
for threads in 1 4; do
    echo "=== cargo test --release [DAR_THREADS=$threads] ==="
    DAR_THREADS=$threads cargo test --workspace --release -q
done

echo "ci.sh: all checks passed"
