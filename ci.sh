#!/bin/bash
# Repo CI gate: formatting, lints, build, tests. Run before merging and as
# the run_experiments.sh preflight (skip there with DAR_SKIP_CI=1).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (-D warnings) ==="
cargo clippy --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

# dar-par lives under crates/shims/, which the workspace excludes so the
# shims stay dependency-free; its tests must be invoked standalone.
echo "=== dar-par pool tests (standalone, workspace-excluded) ==="
cargo test --manifest-path crates/shims/dar-par/Cargo.toml --release -q

# The full suite runs under two thread budgets. Results must not depend
# on the budget (DESIGN.md §9) — a test that passes serially but fails
# parallel (or vice versa) is a determinism bug, not flakiness.
for threads in 1 4; do
    echo "=== cargo test --release [DAR_THREADS=$threads] ==="
    DAR_THREADS=$threads cargo test --workspace --release -q
done

# The serving chaos harness (DESIGN.md §10) is part of the workspace runs
# above; it is also invoked by name under both budgets so a serving
# regression is unmistakable in the CI log.
for threads in 1 4; do
    echo "=== serving chaos harness [DAR_THREADS=$threads] ==="
    DAR_THREADS=$threads cargo test --release -q --test serving_chaos
done

# Record sustained throughput + tail latency of the serving demo into
# results/serve_bench.txt (and the BENCH_serve.json trajectory point).
echo "=== dar-serve bench ==="
cargo run --release --bin dar-serve -- --requests 400 --out results

# Numeric containment (DESIGN.md §11): the op kernels must stay free of
# unwrap/expect — the module-level deny makes the clippy run above fail
# on any new site, so CI only has to assert the attribute is still there.
echo "=== numeric containment: ops unwrap/expect deny ==="
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/tensor/src/ops/mod.rs \
    || { echo "ci.sh: crates/tensor/src/ops lost its unwrap/expect deny"; exit 1; }

# Adversarial numeric fuzz: every public op returns a finite result or a
# typed error under hostile inputs — never a panic — on both budgets.
for threads in 1 4; do
    echo "=== numeric fuzz harness [DAR_THREADS=$threads] ==="
    DAR_THREADS=$threads cargo test --release -q --test numeric_fuzz
done

# Guard-rail overhead benchmark: raw vs guarded throughput on the same
# seeded workload, recorded into results/BENCH_numeric.json (< 5% target).
echo "=== numbench guard-rail overhead ==="
cargo run --release --bin numbench -- --out results

echo "ci.sh: all checks passed"
