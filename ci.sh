#!/bin/bash
# Repo CI gate: formatting, lints, build, tests, benches, regression gate.
# Run before merging and as the run_experiments.sh preflight (skip there
# with DAR_SKIP_CI=1).
#
# Every check is a named, individually-timed stage. A full run writes
# results/ci_report.json (stage -> status/duration) and always ends with
# a summary table, pass or fail.
#
#   ./ci.sh                   # full gate
#   ./ci.sh --stage clippy    # one stage, same report/table machinery
#   ./ci.sh --list            # stage names
#   ./ci.sh --timings         # also print the three slowest stages
#
# Stages are ordered fail-fast: the cheap text gates (fmt, ops-deny,
# kernel-deny) run before anything that compiles, so a trivial rejection
# costs seconds, not a release build.
#
# The benchgate stage compares fresh BENCH_*.json against the trajectory
# committed at HEAD; DAR_BENCHGATE=off skips that comparison for machines
# whose absolute throughput is incomparable to the committed baseline.
#
# DAR_CI_REPORT overrides the report path (default results/ci_report.json);
# DAR_CI_SELFTEST=1 exposes a deliberately failing fake stage so the
# report machinery itself can be regression-tested (tests/ci_report.rs).
set -uo pipefail
cd "$(dirname "$0")"

# ---- stage implementations ---------------------------------------------

st_fmt() { cargo fmt --all -- --check; }

st_clippy() { cargo clippy --all-targets -- -D warnings; }

st_build() { cargo build --release; }

# dar-par lives under crates/shims/, which the workspace excludes so the
# shims stay dependency-free; its tests must be invoked standalone.
st_par_tests() { cargo test --manifest-path crates/shims/dar-par/Cargo.toml --release -q; }

# The full suite runs under two thread budgets. Results must not depend
# on the budget (DESIGN.md §9) — a test that passes serially but fails
# parallel (or vice versa) is a determinism bug, not flakiness. This also
# exercises tests/obs_determinism.rs process-wide under both budgets.
st_test_t1() { DAR_THREADS=1 cargo test --workspace --release -q; }
st_test_t4() { DAR_THREADS=4 cargo test --workspace --release -q; }

# The serving chaos harness (DESIGN.md §10) is part of the workspace runs
# above; it is also invoked by name under both budgets so a serving
# regression is unmistakable in the CI log.
st_chaos_t1() { DAR_THREADS=1 cargo test --release -q --test serving_chaos; }
st_chaos_t4() { DAR_THREADS=4 cargo test --release -q --test serving_chaos; }

# The online-loop chaos suite (DESIGN.md §13) under both budgets: the
# promotion-journal goldens inside assert the event sequence is
# byte-identical whatever the thread budget.
st_online_t1() { DAR_THREADS=1 cargo test --release -q --test online_loop; }
st_online_t4() { DAR_THREADS=4 cargo test --release -q --test online_loop; }

# The scale-out chaos + saturation suite (DESIGN.md §14) under both
# budgets: replica sweeps, exactly-one-outcome under stealing, atomic
# weight publication, tenant fairness, and the replica-count-invariant
# obs golden.
st_scale_out_t1() { DAR_THREADS=1 cargo test --release -q --test scale_out; }
st_scale_out_t4() { DAR_THREADS=4 cargo test --release -q --test scale_out; }

# The self-healing chaos suite (DESIGN.md §16) under both budgets:
# stall-quarantine-hedge at 1/2/4 replicas, probation rejoin, the
# canary-voiding quarantine, the supervisor deadline sweep, and the
# watchdog-silent obs golden.
st_watchdog_t1() { DAR_THREADS=1 cargo test --release -q --test self_healing; }
st_watchdog_t4() { DAR_THREADS=4 cargo test --release -q --test self_healing; }

# Record sustained throughput + tail latency of the serving demo into
# results/serve_bench.txt and the obs_serve.json observability snapshot.
st_serve_bench() { cargo run --release --bin dar-serve -- --requests 400 --out results; }

# Saturation sweep across 1/2/4/8 replica pools on the light workload;
# writes the BENCH_serve.json trajectory point (aggregate rps at 8
# replicas plus per-width rps/p99/steal columns). The binary exits
# non-zero if any request fails or any worker panics.
st_serve_saturation() {
    cargo run --release --bin dar-serve -- --saturate --requests 1024 --out results
}

# Self-healing bench: stall-detection latency and hedge overhead at
# 1/2/4 replicas, written to results/BENCH_health.json for the benchgate
# stage. The binary exits non-zero if a quarantine is missed, a stranded
# request resolves untyped, or hedging fails.
st_health_bench() {
    cargo run --release --bin dar-serve -- --health-bench --out results
}

# Closed online loop demo: train-while-serve with canary promotion and
# auto-rollback, recorded into results/BENCH_online.json and the
# obs_online.json snapshot. The binary exits non-zero on any dropped
# request, trainer death, or a promotion that failed its accuracy bar.
st_loop_bench() { cargo run --release --bin dar-loop -- --rounds 3 --out results; }

# Crash-safety chaos harness (DESIGN.md §15) under both budgets: the
# WAL byte-offset sweeps, the abort-at-every-op sweep, and the real
# SIGKILL-and-recover drill against the dar-loop drill fixture.
st_crash_recovery_t1() { DAR_THREADS=1 cargo test --release -q --test crash_recovery; }
st_crash_recovery_t4() { DAR_THREADS=4 cargo test --release -q --test crash_recovery; }

# Kill-and-recover drill fixture end-to-end (fresh run then a --recover
# resume over the same journal), plus the WAL replay-latency trajectory
# point written to results/BENCH_recovery.json for the benchgate stage.
st_recovery_drill() {
    cargo run --release --bin dar-loop -- \
        --drill --rounds 4 --state-dir target/drill-ci --wal-pad 20000 --out results &&
        cargo run --release --bin dar-loop -- \
            --drill --rounds 4 --state-dir target/drill-ci --recover
}

# Numeric containment (DESIGN.md §11): the op kernels must stay free of
# unwrap/expect — the module-level deny makes the clippy stage fail on
# any new site, so CI only has to assert the attribute is still there.
st_ops_deny() {
    grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/tensor/src/ops/mod.rs \
        || { echo "ci.sh: crates/tensor/src/ops lost its unwrap/expect deny"; return 1; }
}

# Unsafe containment for the kernel backends (DESIGN.md §17): every
# `unsafe` block under crates/tensor/src/ops/ must live under the
# module-level undocumented-unsafe-blocks deny (so clippy rejects any
# block without a `// SAFETY:` comment) — and as a belt-and-braces text
# check, any ops/ file using the `unsafe` keyword must carry at least one
# `// SAFETY:` comment.
st_kernel_deny() {
    grep -q 'deny(clippy::undocumented_unsafe_blocks)' crates/tensor/src/ops/mod.rs \
        || { echo "ci.sh: crates/tensor/src/ops lost its undocumented_unsafe_blocks deny"; return 1; }
    local bad=0 f
    while IFS= read -r f; do
        grep -q '// SAFETY:' "$f" ||
            { echo "ci.sh: $f uses unsafe without a // SAFETY: comment"; bad=1; }
    done < <(grep -rlw 'unsafe' crates/tensor/src/ops --include='*.rs')
    return $bad
}

# Kernel-backend equivalence (DESIGN.md §17) under both thread budgets:
# BlockedKernel outputs and gradients must agree with ReferenceKernel to
# gradient-checker tolerance on every model and on boundary-straddling
# op shapes, and each backend must stay bit-identical to itself across
# budgets.
st_kernel_equiv_t1() { DAR_THREADS=1 cargo test --release -q --test kernel_equivalence; }
st_kernel_equiv_t4() { DAR_THREADS=4 cargo test --release -q --test kernel_equivalence; }

# Per-kernel throughput trajectory: best-of-3 gemm/bmm/gru_bptt/softmax/
# layer_norm reference vs blocked plus end-to-end examples/s, recorded
# into results/BENCH_kernels.json for the benchgate stage. The binary
# exits non-zero below the design floors (blocked >= 2x reference on
# gemm and gru_bptt, >= 1.3x end to end) on SIMD-capable machines.
st_kernel_bench() { cargo run --release --bin numbench -- --kernels --out results; }

# Adversarial numeric fuzz: every public op returns a finite result or a
# typed error under hostile inputs — never a panic — on both budgets.
st_fuzz_t1() { DAR_THREADS=1 cargo test --release -q --test numeric_fuzz; }
st_fuzz_t4() { DAR_THREADS=4 cargo test --release -q --test numeric_fuzz; }

# Guard-rail overhead benchmark: raw vs guarded throughput on the same
# seeded workload, recorded into results/BENCH_numeric.json (< 5% target).
st_numbench() { cargo run --release --bin numbench -- --out results; }

# Observability overhead benchmark: instrumentation disabled vs enabled on
# the same seeded workload, recorded into results/BENCH_obs.json. The
# binary itself exits non-zero past the 3% budget (DESIGN.md §12).
st_obsbench() { cargo run --release --bin obsbench -- --out results; }

# Regression gate over the committed bench trajectory: extract the
# BENCH_*.json baseline from HEAD (the binary never runs git itself),
# prove the gate catches a synthetic regression, then compare the fresh
# points produced by the bench stages above.
st_benchgate() {
    cargo run --release --bin benchgate -- --self-test || return 1
    local bl=target/benchgate/baseline
    rm -rf "$bl" && mkdir -p "$bl"
    local f
    for f in BENCH_serve.json BENCH_numeric.json BENCH_obs.json BENCH_online.json \
        BENCH_recovery.json BENCH_health.json BENCH_kernels.json; do
        git show "HEAD:results/$f" > "$bl/$f" 2>/dev/null || rm -f "$bl/$f"
    done
    cargo run --release --bin benchgate -- --baseline "$bl" --fresh results
}

# Deliberately failing fake stage, only exposed under DAR_CI_SELFTEST=1:
# tests/ci_report.rs drives it to prove a failed run still writes a valid
# report.
st_selftest_fail() {
    echo "ci.sh: selftest-fail stage failing on purpose"
    return 1
}

# ---- stage driver -------------------------------------------------------

# Fail-fast order: text gates (fmt, ops-deny, kernel-deny) cost seconds
# and run before anything build-heavy; clippy compiles but still beats a
# full release build + test sweep.
STAGE_NAMES=(fmt ops-deny kernel-deny clippy build par-tests test-t1 test-t4
    kernel-equiv-t1 kernel-equiv-t4 chaos-t1 chaos-t4
    online-t1 online-t4 scale-out-t1 scale-out-t4 watchdog-t1 watchdog-t4
    serve-bench serve-saturation health-bench loop-bench crash-recovery-t1
    crash-recovery-t4 recovery-drill fuzz-t1 fuzz-t4 numbench
    obsbench kernel-bench benchgate)
[[ ${DAR_CI_SELFTEST:-0} == 1 ]] && STAGE_NAMES+=(selftest-fail)

REPORT_PATH="${DAR_CI_REPORT:-results/ci_report.json}"
TIMINGS=0 # may be set by --timings below, read by the summary trap

RAN_NAMES=()
RAN_STATUS=()
RAN_SECS=()

# Always emits valid JSON: zero stages ran (e.g. an unknown --stage name)
# produces an empty stages map, and `last` is only consulted inside the
# loop, so the failure path — where the trap fires mid-run — closes every
# brace it opened.
write_report() {
    mkdir -p "$(dirname "$REPORT_PATH")"
    {
        echo '{'
        echo '  "schema_version": 1,'
        echo '  "stages": {'
        local i last=$((${#RAN_NAMES[@]} - 1))
        for i in "${!RAN_NAMES[@]}"; do
            local comma=','
            [[ $i -eq $last ]] && comma=''
            printf '    "%s": {"status": "%s", "seconds": %s}%s\n' \
                "${RAN_NAMES[$i]}" "${RAN_STATUS[$i]}" "${RAN_SECS[$i]}" "$comma"
        done
        echo '  }'
        echo '}'
    } > "$REPORT_PATH"
}

summary() {
    write_report
    [[ ${#RAN_NAMES[@]} -eq 0 ]] && return 0
    echo
    echo "ci.sh summary ($REPORT_PATH):"
    printf '  %-16s %-6s %8s\n' stage status seconds
    local i
    for i in "${!RAN_NAMES[@]}"; do
        printf '  %-16s %-6s %8s\n' \
            "${RAN_NAMES[$i]}" "${RAN_STATUS[$i]}" "${RAN_SECS[$i]}"
    done
    if [[ $TIMINGS == 1 ]]; then
        echo
        echo "  slowest stages:"
        for i in "${!RAN_NAMES[@]}"; do
            printf '%s %s\n' "${RAN_SECS[$i]}" "${RAN_NAMES[$i]}"
        done | sort -rn | head -3 | while read -r secs name; do
            printf '  %-16s %15ss\n' "$name" "$secs"
        done
    fi
}
trap summary EXIT

run_stage() {
    local name="$1" fn="$2"
    echo "=== $name ==="
    local start=$SECONDS status=ok
    "$fn" || status=FAIL
    RAN_NAMES+=("$name")
    RAN_STATUS+=("$status")
    RAN_SECS+=($((SECONDS - start)))
    if [[ $status == FAIL ]]; then
        echo "ci.sh: stage '$name' FAILED"
        exit 1
    fi
}

TIMINGS=0
for arg in "$@"; do
    [[ $arg == --timings ]] && TIMINGS=1
done

ONLY=""
case "${1:-}" in
    --stage)
        ONLY="${2:?usage: ci.sh --stage <name>}"
        if [[ ! " ${STAGE_NAMES[*]} " == *" $ONLY "* ]]; then
            echo "ci.sh: unknown stage '$ONLY' (try --list)"
            exit 2
        fi
        ;;
    --list)
        trap - EXIT # listing must not touch the report
        printf '%s\n' "${STAGE_NAMES[@]}"
        exit 0
        ;;
    -h | --help)
        trap - EXIT
        echo "usage: ci.sh [--stage <name>] [--list] [--timings]"
        exit 0
        ;;
esac

for name in "${STAGE_NAMES[@]}"; do
    [[ -n $ONLY && $name != "$ONLY" ]] && continue
    run_stage "$name" "st_${name//-/_}"
done

echo "ci.sh: all checks passed"
